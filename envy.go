package envy

import (
	"fmt"
	"sync"
	"time"

	"envy/internal/cleaner"
	"envy/internal/core"
	"envy/internal/fault"
	"envy/internal/flash"
	"envy/internal/host"
	"envy/internal/maptier"
	"envy/internal/recovery"
	"envy/internal/sim"
	"envy/internal/stats"
)

// ErrPowerFailure identifies a simulated power failure:
// errors.Is(err, ErrPowerFailure) is true for the error returned by the
// operation a crash interrupted, whichever crash point fired.
var ErrPowerFailure = fault.ErrPowerFailure

// ErrCrashed is returned by operations attempted between a power
// failure and the Recover call that repairs the device.
var ErrCrashed = core.ErrCrashed

// AccessError is the rejection returned by the *Err access methods for
// an address or range the device cannot serve — out of range, or a
// word access straddling a page boundary. A rejected access charges no
// simulated time and changes no state.
type AccessError = core.AccessError

// Policy selects the Flash cleaning policy (§4 of the paper).
type Policy int

// Cleaning policies. HybridPolicy with PartitionSegments=1 is pure
// locality gathering (§4.3); with PartitionSegments equal to the
// segment count it degenerates to FIFO. GreedyPolicy always cleans the
// most-invalidated segment (§4.2).
const (
	HybridPolicy Policy = iota
	GreedyPolicy
)

func (p Policy) String() string {
	switch p {
	case HybridPolicy:
		return "hybrid"
	case GreedyPolicy:
		return "greedy"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// FlushPolicy selects how the write-back path drains dirty SRAM frames
// to Flash (Config.FlushPolicy).
type FlushPolicy int

const (
	// FullPageFlush is the paper's write-back: every drained frame
	// programs a full Flash page. The default.
	FullPageFlush FlushPolicy = iota

	// DiffFlush enables page-differential logging: a drained frame with
	// a small dirty span appends a diff record — packed with records
	// from other frames into one shared program unit — to a per-page
	// chain over an unchanged base copy. Reads of a chained page merge
	// base and overlapping records; cleaning consolidates chains into
	// fresh full copies; a chain at Config.DiffMaxChain records is
	// promoted back to a full-page flush. Incompatible with
	// ParallelService.
	DiffFlush
)

func (p FlushPolicy) String() string {
	switch p {
	case FullPageFlush:
		return "full-page"
	case DiffFlush:
		return "diff"
	}
	return fmt.Sprintf("FlushPolicy(%d)", int(p))
}

// Config describes an eNVy device. Zero fields take the paper's
// defaults (Figure 12) scaled to the geometry.
type Config struct {
	// Physical organization: Segments independently erasable segments
	// of PagesPerSegment pages of PageSize bytes, striped over Banks
	// banks of byte-wide chips.
	PageSize        int
	PagesPerSegment int
	Segments        int
	Banks           int

	// Policy and its partition size (16 in the paper).
	Policy            Policy
	PartitionSegments int

	// WearThreshold triggers a wear-leveling swap when the most-cycled
	// segment exceeds the least-cycled by this many erases (100 in
	// §4.3; 0 disables wear leveling).
	WearThreshold int64

	// UtilizationTarget caps live data as a fraction of the array
	// (default 0.8, §4.1).
	UtilizationTarget float64

	// BufferPages is the battery-backed SRAM write buffer capacity
	// (default: one segment's worth of pages, §5.1).
	BufferPages int

	// MMUEntries sizes the translation cache (default 4096; -1
	// disables it).
	MMUEntries int

	// ParallelFlush enables the §6 extension: up to this many
	// concurrent bank programs/erases (default 1 = off).
	ParallelFlush int

	// HostQueueDepth is how many host requests may be outstanding at
	// once through the Submit interface (default 1, the paper's
	// single-outstanding model, §5.1). Above 1 the device runs in
	// multi-outstanding mode: queued requests reorder within the
	// ordering constraints (reads may pass reads; a write to a page
	// fences all later accesses touching it), writes blocked on a full
	// buffer defer behind serviceable reads, and a host access suspends
	// only the Flash bank it touches instead of the whole controller.
	// The synchronous access methods are unaffected.
	HostQueueDepth int

	// PageTableShards splits the page table into this many logical-page
	// range shards, each behind its own lock, letting concurrent
	// submitters translate in parallel without the device mutex.
	// Without ParallelService, sharding never changes simulated timing —
	// results are bit-identical at any shard count. Default 1.
	PageTableShards int

	// ParallelService enables the lock-decomposed parallel host service
	// path for Submit requests: the engine admits batches of queued
	// requests whose resource footprints (page-table shards + Flash
	// banks) are disjoint and executes them concurrently on real OS
	// threads, each batch starting at a shared simulated base time and
	// merging deterministically. Requires HostQueueDepth > 1 to have any
	// effect; PageTableShards and ParallelFlush should be raised toward
	// the bank count for real wins. Changes the simulated timing of
	// multi-outstanding runs (batched requests genuinely overlap);
	// results remain bit-identical for a given submission order at any
	// GOMAXPROCS. Default off.
	ParallelService bool

	// BGWorkers, when positive, runs the background path's physical
	// byte movement — flush-program payload copies into the Flash
	// model's backing store, and cleaning relocation copies — on a pool
	// of that many worker OS threads with one FIFO job lane per bank.
	// The scheduler's decision loop stays serial and jobs never touch
	// simulated state, so results are bit-identical to the serial path
	// (BGWorkers 0) at any worker count and any GOMAXPROCS; only
	// wall-clock throughput changes. Clamped to Banks; ignored with
	// Dataless (no payloads to move). Default 0: off.
	BGWorkers int

	// AdaptiveDepth enables the host-queue depth controller: the engine
	// throttles its effective admission depth within [1, HostQueueDepth]
	// against the observed background-operation suspension rate (§3.4
	// churn — the reason a depth-16 queue loses to depth 4 at
	// saturation). Deterministic: the controller reads only simulated
	// state. Default off.
	AdaptiveDepth bool

	// MapTier, if non-nil, enables the two-tier page table: a
	// fixed-budget SRAM cache of mapping pages over a flash-resident
	// mapping table behind a small battery-backed directory, breaking
	// the flat table's SRAM capacity cap (6 bytes of battery-backed
	// SRAM per logical page). Translation costs change — an MMU miss
	// that also misses the mapping cache pays a Flash read — and
	// mapping-page writebacks, cleans, and erases run as background
	// operations. nil (the default) keeps the flat SRAM table and is
	// bit-identical to builds without the tier. Incompatible with
	// ParallelService.
	MapTier *MapTierConfig

	// FlushPolicy selects the write-back path: FullPageFlush (the
	// default, the paper's full-page programs, bit-identical to builds
	// without the policy layer) or DiffFlush (page-differential
	// logging). Incompatible with ParallelService.
	FlushPolicy FlushPolicy

	// DiffMaxChain bounds a page's diff chain under DiffFlush: once a
	// chain holds this many records the next drain promotes the page to
	// a full-page flush that supersedes base and chain (default 3).
	DiffMaxChain int

	// Dataless drops page payload storage for timing-only studies;
	// reads return zeros.
	Dataless bool

	// FaultPlan, if non-nil, arms a crash-point injector at
	// construction (equivalent to ArmFault after New): the device
	// suffers a simulated power failure at the planned point and stays
	// down until Recover.
	FaultPlan *FaultPlan
}

// MapTierConfig tunes the two-tier page table (Config.MapTier). The
// zero value of each field selects a default.
type MapTierConfig struct {
	// CacheFrames is the SRAM mapping-page cache budget, in mapping
	// pages (default 64, minimum 8). Each frame holds one mapping page
	// (PageSize bytes) of packed table entries.
	CacheFrames int

	// SegmentPages is the translation-segment (erase unit) size in
	// pages (default 256).
	SegmentPages int

	// HighWater is the dirty-frame fraction of the cache that starts
	// the background writeback drain (default 0.5); LowWater is where
	// draining stops (default 0.25).
	HighWater, LowWater float64
}

// FaultPlan describes when a simulated power failure strikes. The zero
// plan never fires; if several triggers are set, whichever is reached
// first wins. Counts are 1-based: Program=1 crashes the very next
// Flash page program.
type FaultPlan struct {
	// Program, Erase, and Retarget crash at the Nth Flash page
	// program, the Nth segment erase, or the Nth copy-on-write
	// retarget window (the §3.1 instant between page-table update and
	// old-copy invalidation).
	Program  int64
	Erase    int64
	Retarget int64

	// Merge crashes at the Nth multi-lane merge boundary: several
	// background operations complete at the same simulated instant and
	// the power fails between their completion callbacks, leaving the
	// window's effects partially merged — the earlier operations'
	// completions applied, the later ones still in flight and torn.
	Merge int64

	// At crashes at the first crash point reached once the simulated
	// clock passes this time.
	At time.Duration

	// Probability fires each crash point independently with this
	// probability (seeded by Seed).
	Probability float64

	// Seed makes the injected crash reproducible: it drives the
	// probabilistic trigger and the shape of torn page contents.
	Seed uint64
}

func (p FaultPlan) plan() fault.Plan {
	return fault.Plan{
		Program:     p.Program,
		Erase:       p.Erase,
		Retarget:    p.Retarget,
		Merge:       p.Merge,
		At:          sim.Duration(p.At),
		Probability: p.Probability,
		Seed:        p.Seed,
	}
}

// PaperConfig returns the configuration simulated in the paper
// (Figure 12): 2 GB of Flash in 128 segments of 16 MB across 8 banks,
// 256-byte pages, a 16 MB write buffer, hybrid cleaning with
// 16-segment partitions, and 100-cycle wear leveling.
//
// A device at this scale with payload storage allocates up to ~2 GB of
// host memory (lazily, per segment); set Dataless for timing-only use.
func PaperConfig() Config {
	return Config{
		PageSize:          256,
		PagesPerSegment:   64 * 1024,
		Segments:          128,
		Banks:             8,
		Policy:            HybridPolicy,
		PartitionSegments: 16,
		WearThreshold:     100,
	}
}

// SmallConfig returns a laptop-friendly profile with the same shape as
// the paper system — 128 segments, 8 banks, 256-byte pages, hybrid-16
// cleaning — at 1/256 the capacity (8 MB).
func SmallConfig() Config {
	return Config{
		PageSize:          256,
		PagesPerSegment:   256,
		Segments:          128,
		Banks:             8,
		Policy:            HybridPolicy,
		PartitionSegments: 16,
		WearThreshold:     100,
		// At full scale the one-segment default buffer is 16 MB and
		// absorbs a 50 ms erase's worth of write traffic; a scaled
		// device needs proportionally more than one (small) segment.
		BufferPages: 2048,
	}
}

func (c Config) coreConfig() core.Config {
	kind := cleaner.Hybrid
	if c.Policy == GreedyPolicy {
		kind = cleaner.Greedy
	}
	cc := core.Config{
		Geometry: flash.Geometry{
			PageSize:        c.PageSize,
			PagesPerSegment: c.PagesPerSegment,
			Segments:        c.Segments,
			Banks:           c.Banks,
		},
		Cleaning: cleaner.Config{
			Kind:              kind,
			PartitionSegments: c.PartitionSegments,
			WearThreshold:     c.WearThreshold,
		},
		UtilizationTarget: c.UtilizationTarget,
		BufferPages:       c.BufferPages,
		MMUEntries:        c.MMUEntries,
		ParallelFlush:     c.ParallelFlush,
		PageTableShards:   c.PageTableShards,
		ParallelService:   c.ParallelService,
		BGWorkers:         c.BGWorkers,
		Dataless:          c.Dataless,
		DiffMaxChain:      c.DiffMaxChain,
		FlushPolicy:       core.FlushPolicyKind(c.FlushPolicy),
	}
	if c.MapTier != nil {
		cc.MapTier = &maptier.Params{
			CacheFrames:  c.MapTier.CacheFrames,
			SegmentPages: c.MapTier.SegmentPages,
			HighWater:    c.MapTier.HighWater,
			LowWater:     c.MapTier.LowWater,
		}
	}
	if c.FaultPlan != nil {
		p := c.FaultPlan.plan()
		cc.FaultPlan = &p
	}
	return cc
}

// Device is a simulated eNVy storage system: a flat, persistent,
// byte-addressable memory.
//
// # Concurrency
//
// All Device methods are safe for concurrent use: one mutex serializes
// them, which models the hardware faithfully — the host memory bus
// admits a single access at a time. The memory model this buys the
// host is sequential consistency over device operations: concurrent
// calls execute in some single total order, each call observes every
// effect of the calls ordered before it, and a call's return
// happens-before (in the Go sense) the start of whichever call the
// mutex admits next. Aggregate operations (Read, Write, Stats,
// Recover) are atomic as a whole: no other caller's access interleaves
// inside them.
//
// With Config.ParallelService, the device-driving call that services
// the queue fans admitted batches out to worker goroutines internally
// (core.ExecBatch), but the public memory model is unchanged: the
// device mutex is held across the whole batch, the internal lanes only
// touch state their resource footprints cover, and they join before
// the driving call returns. Externally observable ordering is still
// the sequentially consistent admission order; what changes is the
// simulated timing (batched requests overlap on the device clock, the
// way independent banks overlap in §6) and the wall-clock throughput,
// which now scales with GOMAXPROCS. For a fixed submission order the
// simulation is bit-identical at any GOMAXPROCS setting.
//
// The transaction (§6) is device-wide state, not per-caller — exactly
// one may be open at a time, and Begin/Commit/Rollback from different
// goroutines act on that one transaction. Callers that mix
// transactional and plain writes concurrently must coordinate
// ownership of the transaction themselves, or unrelated writes will be
// captured by (and roll back with) someone else's transaction.
//
// # Asynchronous requests
//
// Submit enqueues a Request into the bounded host queue
// (Config.HostQueueDepth slots) and returns without servicing it;
// completion is observed through Wait, the request's Done channel, or
// an OnComplete callback. Request validation and the first page-table
// translation happen outside the device mutex, against the sharded
// page table (Config.PageTableShards) — concurrent submitters
// translate in parallel. The synchronous access methods bypass the
// queue: they execute immediately, ahead of anything queued, so
// callers that need ordering against in-flight requests should Drain
// (or Wait) first.
//
// Core bypasses the mutex; see its doc.
type Device struct {
	mu  sync.Mutex
	d   *core.Device
	eng *host.Engine
}

// New builds a device. Missing Config fields default to the paper's
// parameters.
func New(cfg Config) (*Device, error) {
	if cfg.HostQueueDepth < 0 {
		return nil, fmt.Errorf("envy: HostQueueDepth %d must be at least 1", cfg.HostQueueDepth)
	}
	d, err := core.New(cfg.coreConfig())
	if err != nil {
		return nil, err
	}
	depth := cfg.HostQueueDepth
	if depth == 0 {
		depth = 1
	}
	d.SetHostConcurrency(depth)
	eng := host.New(d, depth, d.Geometry().PageSize)
	if cfg.ParallelService {
		eng.SetParallel(d)
	}
	if cfg.AdaptiveDepth {
		eng.EnableAdaptive()
	}
	return &Device{d: d, eng: eng}, nil
}

// Size returns the logical capacity in bytes (80% of the physical
// array by default).
func (dev *Device) Size() int64 {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.d.Size()
}

// Now returns the current simulated time since device start.
func (dev *Device) Now() time.Duration {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return time.Duration(dev.d.Now())
}

// Idle advances the simulated clock by d with the host idle, letting
// background flushing, cleaning, and erasing make progress. Queued
// requests are serviced first: an idle host drains its queue.
func (dev *Device) Idle(d time.Duration) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	target := dev.d.Now().Add(sim.Duration(d))
	dev.eng.RunUntil(target)
	dev.d.AdvanceTo(target)
}

// PageState is where a request's first page lived at submission time —
// a diagnostic snapshot taken during the lock-free pre-translation, so
// it may be stale by the instant the request is serviced.
type PageState int

const (
	// PageUnknown is the zero value: the request has not been submitted.
	PageUnknown PageState = iota
	// PageUnmapped: never written (reads return zeros).
	PageUnmapped
	// PageBuffered: current copy in the battery-backed SRAM buffer.
	PageBuffered
	// PageFlash: current copy in the Flash array.
	PageFlash
)

func (s PageState) String() string {
	switch s {
	case PageUnknown:
		return "unknown"
	case PageUnmapped:
		return "unmapped"
	case PageBuffered:
		return "buffered"
	case PageFlash:
		return "flash"
	}
	return fmt.Sprintf("PageState(%d)", int(s))
}

// Request is one asynchronous host access, issued with Submit and
// completed through Wait, Done, or OnComplete. The caller fills Write,
// Addr, Data (and optionally OnComplete); the device fills the rest at
// completion. A Request is single-use: resubmitting one is an error.
type Request struct {
	Write bool
	Addr  uint64
	Data  []byte // read destination or write payload

	// OnComplete, if non-nil, runs when the request completes, inside
	// the device-driving call (Submit, Wait, Drain, or Idle of whichever
	// goroutine's turn advanced the clock) and before Done is closed. It
	// must not call back into the Device.
	OnComplete func(*Request)

	// Completion-filled fields, valid once Done is closed: timestamps on
	// the simulated clock (offsets from device start), the sojourn
	// latency (Completion − Arrival, queueing and stalls included), the
	// access outcome, and where the first page lived at submission.
	Arrival    time.Duration
	Start      time.Duration
	Completion time.Duration
	Latency    time.Duration
	Err        error
	AtSubmit   PageState

	inner *host.Request
	done  chan struct{}
}

// Done returns a channel closed when the request completes; the
// completion-filled fields are visible to any goroutine that observes
// the close. It returns nil before Submit.
func (r *Request) Done() <-chan struct{} { return r.done }

// Submit validates r and enqueues it into the bounded host queue,
// usually without servicing it — completion is observed through Wait,
// Done, or OnComplete, and arrives when some later device call (Submit,
// Wait, Drain, Idle) advances the simulation far enough. If the queue
// is at capacity, Submit back-pressures: it blocks (in simulated time)
// servicing requests until a slot frees.
//
// Validation and the first page-table translation run before the
// device mutex is taken, against the sharded page table, so concurrent
// submitters translate in parallel. A rejected request charges no
// simulated time.
//
// At HostQueueDepth 1 the queue degenerates to the paper's
// single-outstanding host: Submit services r synchronously and is
// bit-identical to the corresponding *Err method.
func (dev *Device) Submit(r *Request) error {
	if err := dev.prepare(r); err != nil {
		return err
	}
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.eng.Submit(r.inner)
	return nil
}

// SubmitAll validates every request, then enqueues the batch under one
// device-mutex acquisition. Either the whole batch is accepted or none
// of it: the first validation failure returns its error with no
// request enqueued (the already-prepared prefix is unwound and may be
// resubmitted). Queue-capacity back-pressure behaves as in Submit,
// applied as the batch is absorbed.
func (dev *Device) SubmitAll(rs ...*Request) error {
	for i, r := range rs {
		if err := dev.prepare(r); err != nil {
			for _, p := range rs[:i] {
				p.inner = nil
				p.done = nil
			}
			return err
		}
	}
	inners := make([]*host.Request, len(rs))
	for i, r := range rs {
		inners[i] = r.inner
	}
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.eng.SubmitAll(inners...)
	return nil
}

// prepare validates r and builds its host-level request. It runs
// before the device mutex is taken: CheckRange reads only immutable
// geometry, and the diagnostic lookup takes one page-table shard's
// read lock.
func (dev *Device) prepare(r *Request) error {
	if r.inner != nil {
		return fmt.Errorf("envy: Request resubmitted; requests are single-use")
	}
	if err := dev.d.CheckRange(r.Addr, len(r.Data)); err != nil {
		return err
	}
	page := uint32(r.Addr / uint64(dev.d.Geometry().PageSize))
	switch loc, ok := dev.d.PageTable().Lookup(page); {
	case !ok:
		r.AtSubmit = PageUnmapped
	case loc.InSRAM:
		r.AtSubmit = PageBuffered
	default:
		r.AtSubmit = PageFlash
	}
	done := make(chan struct{})
	inner := &host.Request{Write: r.Write, Addr: r.Addr, Data: r.Data}
	inner.OnComplete = func(h *host.Request) {
		r.Arrival = time.Duration(h.Arrival)
		r.Start = time.Duration(h.Start)
		r.Completion = time.Duration(h.Completion)
		r.Latency = time.Duration(h.Latency())
		r.Err = h.Err
		if r.OnComplete != nil {
			r.OnComplete(r)
		}
		close(done)
	}
	r.inner = inner
	r.done = done
	return nil
}

// Wait drives the simulation until r completes and returns its access
// outcome, or an error if r was never submitted.
func (dev *Device) Wait(r *Request) error {
	if r.inner == nil {
		return fmt.Errorf("envy: Wait on a request that was never submitted")
	}
	dev.mu.Lock()
	if !r.inner.Completed() {
		dev.eng.ServeUntilDone(r.inner)
	}
	dev.mu.Unlock()
	<-r.done
	return r.Err
}

// Drain services every outstanding request, blocked writes included,
// and returns once the host queue is empty.
func (dev *Device) Drain() {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.eng.Drain()
}

// Outstanding returns the number of submitted, not-yet-completed
// requests.
func (dev *Device) Outstanding() int {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.eng.Outstanding()
}

// EffectiveDepth returns the host queue depth currently admitted by
// the AIMD controller (the configured depth when AdaptiveDepth is
// off). A service tier uses Outstanding() >= EffectiveDepth() as the
// per-device back-pressure signal.
func (dev *Device) EffectiveDepth() int {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.eng.EffectiveDepth()
}

// ReadWord reads the 32-bit word at a 4-byte-aligned address and
// returns it with the host-observed latency.
func (dev *Device) ReadWord(addr uint64) (uint32, time.Duration) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	v, lat := dev.d.ReadWord(addr)
	return v, time.Duration(lat)
}

// WriteWord stores a 32-bit word and returns the host-observed latency.
func (dev *Device) WriteWord(addr uint64, v uint32) time.Duration {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return time.Duration(dev.d.WriteWord(addr, v))
}

// Read fills p from addr, one word-sized host access at a time, and
// returns the cumulative latency. An out-of-range access panics, as a
// wild pointer through a real memory bus would fault; hosts that
// cannot trust their addresses should use ReadErr.
func (dev *Device) Read(p []byte, addr uint64) time.Duration {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return time.Duration(dev.d.Read(p, addr))
}

// ReadErr is Read with the address range validated up front: an
// out-of-range access returns an error instead of panicking, with no
// time charged and no state changed.
func (dev *Device) ReadErr(p []byte, addr uint64) (time.Duration, error) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	lat, err := dev.d.ReadErr(p, addr)
	return time.Duration(lat), err
}

// Write stores p at addr, one word-sized host access at a time, and
// returns the cumulative latency. An out-of-range access panics; see
// Read.
func (dev *Device) Write(p []byte, addr uint64) time.Duration {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return time.Duration(dev.d.Write(p, addr))
}

// WriteErr is Write with the address range validated up front,
// returning an error instead of panicking on an out-of-range access.
func (dev *Device) WriteErr(p []byte, addr uint64) (time.Duration, error) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	lat, err := dev.d.WriteErr(p, addr)
	return time.Duration(lat), err
}

// ReadWordErr is ReadWord with the address validated up front: an
// out-of-range or page-straddling access returns an error instead of
// panicking.
func (dev *Device) ReadWordErr(addr uint64) (uint32, time.Duration, error) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	v, lat, err := dev.d.ReadWordErr(addr)
	return v, time.Duration(lat), err
}

// WriteWordErr is WriteWord with the address validated up front,
// returning an error instead of panicking.
func (dev *Device) WriteWordErr(addr uint64, v uint32) (time.Duration, error) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	lat, err := dev.d.WriteWordErr(addr, v)
	return time.Duration(lat), err
}

// Preload installs initial contents directly into Flash, bypassing the
// write buffer and the simulated clock (a restore/format pass).
func (dev *Device) Preload(data []byte, addr uint64) error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.d.Preload(data, addr)
}

// PowerCycle simulates a *clean* power failure and recovery: no
// operation is in flight, all data and mapping state survive (Flash +
// battery-backed SRAM), and only the volatile translation cache is
// lost. To model a failure that interrupts work mid-operation, use
// ArmFault or CrashPowerCycle followed by Recover.
func (dev *Device) PowerCycle() {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.d.PowerCycle()
}

// ArmFault installs a one-shot crash-point injector executing plan,
// replacing any previous one. When a planned point is reached, the
// device suffers a power failure exactly there — a partially
// programmed page, a half-erased segment, or an un-invalidated old
// copy — and every operation fails with ErrCrashed until Recover.
func (dev *Device) ArmFault(plan FaultPlan) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.d.ArmFault(plan.plan())
}

// DisarmFault removes the armed fault plan, if any.
func (dev *Device) DisarmFault() {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.d.DisarmFault()
}

// Crashed reports whether the device is down after a simulated power
// failure and needs Recover.
func (dev *Device) Crashed() bool {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.d.Crashed()
}

// CrashPowerCycle forces a power failure right now, regardless of any
// armed plan — the external switch-flip. Anything in flight (an
// in-flight flush program, queued background work) is interrupted the
// way a real power loss would leave it.
func (dev *Device) CrashPowerCycle() {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.d.CrashPowerCycle()
}

// RecoveryReport summarizes what a Recover call found and repaired.
type RecoveryReport struct {
	// FlushesDiscarded in-flight flush programs were discarded (the
	// buffered SRAM copy remains current); StrayFlushes frames were
	// reset whose flush had not chosen a target yet.
	FlushesDiscarded int
	StrayFlushes     int

	// DiffUnitsDiscarded in-flight shared diff-unit programs were
	// discarded (every member frame remains current, dirty span
	// retained); DiffEntriesDropped unclaimed diff-chain entries were
	// dropped (Config.FlushPolicy DiffFlush only).
	DiffUnitsDiscarded int
	DiffEntriesDropped int

	// HalfErased segments had their interrupted erase run again.
	HalfErased int

	// CleanFinished / WearSwapFinished report an interrupted segment
	// clean or wear swap that recovery ran to completion.
	CleanFinished    bool
	WearSwapFinished bool

	// TornQuarantined partially programmed pages were retired;
	// Orphans un-invalidated old copies were reclaimed.
	TornQuarantined int
	Orphans         int

	// MountWearSwaps wear-leveling swaps ran at mount to bring the
	// wear spread back within bound.
	MountWearSwaps int

	// RolledBackPages of an open transaction were restored to their
	// pre-transaction contents.
	RolledBackPages int

	// Two-tier page table repairs (Config.MapTier only): discarded
	// in-flight mapping-page writebacks, a translation-segment clean
	// finished from its intent (and how many mapping pages it still
	// copied), re-erased half-erased translation segments, quarantined
	// torn mapping-page programs, and swept orphan copies.
	MapWritebacksDiscarded int
	MapCleanFinished       bool
	MapCleanCopies         int
	MapHalfErased          int
	MapTornQuarantined     int
	MapOrphans             int
}

// Recover mounts a crashed device: every crash artifact is repaired
// from battery-backed state plus a Flash scan, an open transaction is
// rolled back, and the full invariant suite must pass before the
// device returns to service. Every write acknowledged before the
// crash is durable; no torn or uncommitted data is readable after.
func (dev *Device) Recover() (RecoveryReport, error) {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	r, err := recovery.Recover(dev.d)
	return RecoveryReport{
		FlushesDiscarded: r.FlushesDiscarded,
		StrayFlushes:     r.StrayFlushes,

		DiffUnitsDiscarded: r.DiffUnitsDiscarded,
		DiffEntriesDropped: r.DiffEntriesDropped,
		HalfErased:         r.HalfErased,
		CleanFinished:      r.CleanFinished,
		WearSwapFinished:   r.WearSwapFinished,
		TornQuarantined:    r.TornQuarantined,
		Orphans:            r.Orphans,
		MountWearSwaps:     r.MountWearSwaps,
		RolledBackPages:    r.RolledBackPages,

		MapWritebacksDiscarded: r.MapTier.InflightDiscarded,
		MapCleanFinished:       r.MapTier.CleanFinished,
		MapCleanCopies:         r.MapTier.CleanCopies,
		MapHalfErased:          r.MapTier.HalfErased,
		MapTornQuarantined:     r.MapTier.TornQuarantined,
		MapOrphans:             r.MapTier.Orphans,
	}, err
}

// Begin opens a hardware atomic transaction (§6). Writes until Commit
// or Rollback keep their pre-transaction versions as shadow copies.
func (dev *Device) Begin() error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.d.BeginTransaction()
}

// Commit makes the open transaction's writes permanent.
func (dev *Device) Commit() error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.d.Commit()
}

// Rollback restores every page written during the open transaction.
func (dev *Device) Rollback() error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.d.Rollback()
}

// Stats is a point-in-time snapshot of the device's measurements.
type Stats struct {
	// Host-observed latency distributions.
	ReadMean, WriteMean time.Duration
	ReadP99, WriteP99   time.Duration
	ReadMax, WriteMax   time.Duration
	Reads, Writes       int64

	// Flash-level operation counts.
	CopyOnWrites  int64
	BufferHits    int64
	Flushes       int64
	CleanCopies   int64
	SegmentCleans int64
	Erases        int64
	WearSwaps     int64

	// CleaningCost is cleaner programs per flushed page (§4.1).
	CleaningCost float64

	// Differential flush policy counters (Config.FlushPolicy DiffFlush;
	// zero under the full-page policy). DiffRecordsWritten counts diff
	// records programmed into shared units, DiffUnitPrograms the unit
	// programs that carried them, DiffMerges base∪chain merges (read
	// misses, copy-on-write, cleaning consolidation), DiffPromotions
	// chains promoted to full-page flushes at the DiffMaxChain bound.
	DiffRecordsWritten int64
	DiffUnitPrograms   int64
	DiffMerges         int64
	DiffPromotions     int64

	// ProgramBytes is the total bytes physically programmed into Flash
	// pages — pages × PageSize under the full-page policy, less under
	// differential logging (the write-amplification numerator).
	ProgramBytes int64

	// Controller time fractions (of total elapsed time, §5.3).
	FracIdle, FracReading, FracWriting    float64
	FracFlushing, FracCleaning, FracErase float64

	// MMUHitRate is the translation cache hit rate.
	MMUHitRate float64

	// Wear spread across segments (erase cycles).
	WearMin, WearMax int64

	// BufferedPages is the current write-buffer occupancy.
	BufferedPages int

	// Host queue measurements (Submit requests only; the synchronous
	// access methods feed the Read*/Write* distributions above).
	// Latencies are sojourn times — completion minus arrival, queueing
	// and stalls included.
	HostRequests                       int64
	HostP50, HostP95, HostP99, HostMax time.Duration
	HostMeanDepth                      float64
	HostMaxDepth                       int

	// HostEffectiveDepth is the admission depth the engine currently
	// back-pressures at: HostQueueDepth normally, the adaptive
	// controller's throttled depth under Config.AdaptiveDepth.
	// HostMinEffectiveDepth is the deepest throttle the controller
	// reached so far — the controller relaxes as churn subsides, so the
	// instantaneous depth alone hides how far it stepped down.
	HostEffectiveDepth    int
	HostMinEffectiveDepth int

	// Parallel service batch accounting (Config.ParallelService):
	// dispatched batches, requests serviced inside them, and the
	// largest batch.
	HostBatches         int64
	HostBatchedRequests int64
	HostMaxBatch        int

	// FlushCleanOverlap is simulated time during which a flush program
	// and a cleaning copy were progressing concurrently on distinct
	// banks (the §6 cleaner-acceleration overlap).
	FlushCleanOverlap time.Duration

	// Two-tier page table measurements (Config.MapTier; zero when the
	// flat table is in use). MapHits/MapMisses count host translations
	// served from the mapping cache versus fetched from Flash;
	// MapWritebacks and MapSyncWritebacks count background and
	// eviction-forced mapping-page programs; MapCleans/MapCleanCopies/
	// MapErases count translation-segment cleaning activity.
	MapTierEnabled                   bool
	MapHits, MapMisses               int64
	MapHitRate                       float64
	MapFetches                       int64
	MapWritebacks, MapSyncWritebacks int64
	MapCleans, MapCleanCopies        int64
	MapErases                        int64

	// Battery-backed SRAM footprint of the page table: the flat
	// table's bytes (what the baseline needs and what a two-tier
	// device saves), and the two-tier directory + cache bytes (zero
	// when disabled).
	FlatTableBytes    int64
	MapDirectoryBytes int64
	MapCacheBytes     int64

	// Background operation lifecycles, by kind (§3.4 suspend/resume).
	FlushOps     OpCounters
	CleanCopyOps OpCounters
	EraseOps     OpCounters
	WearSwapOps  OpCounters

	// Mapping-page background operations (Config.MapTier): writeback
	// programs, translation-segment clean copies, and erases.
	MapFlushOps OpCounters
	MapCleanOps OpCounters
	MapEraseOps OpCounters

	// Background worker-pool accounting (Config.BGWorkers; zero when the
	// pool is off). BGPoolWorkers is the pool's thread count;
	// BGPoolJobs/BGPoolBytes count payload jobs and bytes moved on the
	// bank lanes (both deterministic — they mirror the serial path's
	// program and copy counts). BGPoolSyncWaits counts lane joins that
	// actually blocked; it is a wall-clock-domain figure that varies run
	// to run and must never be compared across runs.
	BGPoolWorkers   int
	BGPoolJobs      int64
	BGPoolBytes     int64
	BGPoolSyncWaits int64
}

// OpCounters is the scheduler's lifecycle accounting for one kind of
// background operation: flush programs, cleaning copies, erases, or
// wear-swap relocations.
type OpCounters struct {
	// Started and Completed count operations enqueued and finished.
	Started   int64
	Completed int64

	// Suspensions and Resumes count how often host accesses preempted
	// operations of this kind mid-flight and how often they picked back
	// up afterwards (each resume pays the §3.4 resume delay).
	Suspensions int64
	Resumes     int64

	// Active is simulated time operations of this kind spent
	// progressing on the chips; Suspended is time spent parked
	// mid-operation waiting for the host to go quiet.
	Active    time.Duration
	Suspended time.Duration
}

func opCounters(c stats.OpCounters) OpCounters {
	return OpCounters{
		Started:     c.Started,
		Completed:   c.Completed,
		Suspensions: c.Suspensions,
		Resumes:     c.Resumes,
		Active:      time.Duration(c.Active),
		Suspended:   time.Duration(c.Suspended),
	}
}

// Stats returns the current measurement snapshot.
func (dev *Device) Stats() Stats {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	c := dev.d.Counters()
	ops := dev.d.OpStats()
	b := dev.d.Breakdown()
	rl, wl := dev.d.ReadLatency(), dev.d.WriteLatency()
	hl := dev.eng.Latency()
	wmin, wmax := dev.d.Array().WearSpread()
	st := Stats{
		ReadMean:              time.Duration(rl.Mean()),
		WriteMean:             time.Duration(wl.Mean()),
		ReadP99:               time.Duration(rl.Percentile(99)),
		WriteP99:              time.Duration(wl.Percentile(99)),
		ReadMax:               time.Duration(rl.Max()),
		WriteMax:              time.Duration(wl.Max()),
		Reads:                 c.HostReads,
		Writes:                c.HostWrites,
		CopyOnWrites:          c.CopyOnWrites,
		BufferHits:            c.BufferHits,
		Flushes:               c.Flushes,
		CleanCopies:           c.CleanCopies,
		SegmentCleans:         c.SegmentCleans,
		Erases:                c.Erases,
		WearSwaps:             c.WearSwaps,
		CleaningCost:          c.CleaningCost(),
		DiffRecordsWritten:    c.DiffRecordsWritten,
		DiffUnitPrograms:      c.DiffUnitPrograms,
		DiffMerges:            c.DiffMerges,
		DiffPromotions:        c.DiffPromotions,
		ProgramBytes:          dev.d.Array().ProgramBytes(),
		FracIdle:              b.Fraction(stats.Idle),
		FracReading:           b.Fraction(stats.Reading),
		FracWriting:           b.Fraction(stats.Writing),
		FracFlushing:          b.Fraction(stats.Flushing),
		FracCleaning:          b.Fraction(stats.Cleaning),
		FracErase:             b.Fraction(stats.Erasing),
		MMUHitRate:            dev.d.MMUHitRate(),
		WearMin:               wmin,
		WearMax:               wmax,
		BufferedPages:         dev.d.BufferLen(),
		HostRequests:          dev.eng.Served(),
		HostP50:               time.Duration(hl.Percentile(50)),
		HostP95:               time.Duration(hl.Percentile(95)),
		HostP99:               time.Duration(hl.Percentile(99)),
		HostMax:               time.Duration(hl.Max()),
		HostMeanDepth:         dev.eng.MeanDepth(),
		HostMaxDepth:          dev.eng.MaxDepth(),
		HostEffectiveDepth:    dev.eng.EffectiveDepth(),
		HostMinEffectiveDepth: dev.eng.MinEffectiveDepth(),
		HostBatches:           dev.eng.Batches(),
		HostBatchedRequests:   dev.eng.BatchedRequests(),
		HostMaxBatch:          dev.eng.MaxBatch(),
		FlushCleanOverlap:     time.Duration(ops.FlushCleanOverlap()),
		FlushOps:              opCounters(ops.Get(stats.OpFlush)),
		CleanCopyOps:          opCounters(ops.Get(stats.OpCleanCopy)),
		EraseOps:              opCounters(ops.Get(stats.OpErase)),
		WearSwapOps:           opCounters(ops.Get(stats.OpWearSwap)),
		MapFlushOps:           opCounters(ops.Get(stats.OpMapFlush)),
		MapCleanOps:           opCounters(ops.Get(stats.OpMapClean)),
		MapEraseOps:           opCounters(ops.Get(stats.OpMapErase)),
	}
	st.FlatTableBytes = dev.d.PageTable().SRAMBytes()
	if mt := dev.d.MapTier(); mt != nil {
		mc := mt.Counters()
		st.MapTierEnabled = true
		st.MapHits, st.MapMisses = mc.Hits, mc.Misses
		st.MapHitRate = mc.HitRate()
		st.MapFetches = mc.Fetches
		st.MapWritebacks, st.MapSyncWritebacks = mc.Writebacks, mc.SyncWritebacks
		st.MapCleans, st.MapCleanCopies = mc.Cleans, mc.CleanCopies
		st.MapErases = mc.Erases
		st.MapDirectoryBytes = mt.DirectoryBytes()
		st.MapCacheBytes = mt.CacheBytes()
	}
	if p := dev.d.Pool(); p != nil {
		st.BGPoolWorkers = p.Workers()
		st.BGPoolJobs, st.BGPoolBytes, st.BGPoolSyncWaits = p.Stats()
	}
	return st
}

// ResetStats zeroes all measurements (typically after warm-up).
func (dev *Device) ResetStats() {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.d.ResetStats()
	dev.eng.ResetStats()
}

// Close releases the background worker pool's OS threads
// (Config.BGWorkers). The device stays fully usable afterwards —
// payload work simply runs inline, as with BGWorkers 0 — so Close is
// about reclaiming threads promptly, not about ending the device's
// life. Idempotent; a no-op without a pool. Unclosed pools are reaped
// by a finalizer, so calling Close is optional outside long-lived
// processes that churn through many devices.
func (dev *Device) Close() {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.d.Close()
}

// CheckConsistency verifies the device's internal invariants and
// returns the first violation, or nil. Intended for tests and
// validation harnesses.
func (dev *Device) CheckConsistency() error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.d.CheckConsistency()
}

// Core exposes the underlying controller for advanced instrumentation
// (benchmark harnesses inside this module). External users should not
// need it. The core device is NOT protected by the Device mutex:
// callers that mix Core with concurrent Device methods must hold off
// all other goroutines themselves, or races on controller state will
// corrupt the simulation.
func (dev *Device) Core() *core.Device { return dev.d }
