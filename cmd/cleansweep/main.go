// Command cleansweep runs ad-hoc cleaning-policy studies: one policy,
// one locality, arbitrary array organizations — the exploratory
// companion to cmd/experiments' fixed figure sweeps.
//
// Example:
//
//	cleansweep -policy hybrid -partition 16 -locality 10/90
//	cleansweep -policy greedy -segments 257 -pages 256 -locality 5/95
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"envy/internal/cleaner"
	"envy/internal/flash"
	"envy/internal/invariant"
	"envy/internal/sim"
	"envy/internal/stats"
	"envy/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cleansweep: ")

	var (
		policy    = flag.String("policy", "hybrid", "policy: hybrid, lg, fifo, greedy")
		partition = flag.Int("partition", 16, "segments per partition (hybrid)")
		segments  = flag.Int("segments", 129, "number of segments (one is the spare)")
		pages     = flag.Int("pages", 128, "pages per segment")
		locality  = flag.String("locality", "50/50", "bimodal locality, e.g. 10/90")
		kind      = flag.String("workload", "bimodal", "workload: bimodal, sequential, shifting")
		warm      = flag.Int("warm", 60, "warm-up writes, in multiples of the logical page count")
		measure   = flag.Int("measure", 20, "measured writes, in multiples of the logical page count")
		wear      = flag.Int64("wear", 0, "wear-leveling threshold (0 = off)")
		seed      = flag.Uint64("seed", 1, "random seed")
		check     = flag.Bool("check", false, "run the harness invariant checker after warm-up and after the measured run")
	)
	flag.Parse()

	dist, err := sim.ParseLocality(*locality)
	if err != nil {
		log.Fatal(err)
	}
	geo := flash.Geometry{PageSize: 256, PagesPerSegment: *pages, Segments: *segments, Banks: 1}
	cfg := cleaner.Config{WearThreshold: *wear}
	switch *policy {
	case "hybrid":
		cfg.Kind, cfg.PartitionSegments = cleaner.Hybrid, *partition
	case "lg":
		cfg.Kind, cfg.PartitionSegments = cleaner.Hybrid, 1
	case "fifo":
		cfg.Kind, cfg.PartitionSegments = cleaner.Hybrid, *segments-1
	case "greedy":
		cfg.Kind = cleaner.Greedy
	default:
		log.Printf("unknown policy %q", *policy)
		os.Exit(2)
	}

	h, err := cleaner.NewHarness(geo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	h.Load()
	n := h.LogicalPages()
	var gen workload.Generator
	switch *kind {
	case "bimodal":
		gen = workload.NewBimodal(dist, n, *seed)
	case "sequential":
		gen = workload.NewSequential(n)
	case "shifting":
		gen = workload.NewShifting(n, dist.HotData, dist.HotAccess, 20*n, *seed)
	default:
		log.Printf("unknown workload %q", *kind)
		os.Exit(2)
	}
	var cost float64
	if *check {
		// Split the run so the checker also sees the warmed state, not
		// just the final one.
		h.RunGenerator(gen, *warm*n, 0)
		if err := invariant.CheckHarness(h); err != nil {
			log.Fatalf("invariant violation after warm-up: %v", err)
		}
		cost = h.RunGenerator(gen, 0, *measure*n)
		if err := invariant.CheckHarness(h); err != nil {
			log.Fatalf("invariant violation after measured run: %v", err)
		}
	} else {
		cost = h.RunGenerator(gen, *warm*n, *measure*n)
	}
	c := h.Counters()

	fmt.Printf("array: %d segments x %d pages (%d KB), %d logical pages (80%% utilization)\n",
		geo.Segments, geo.PagesPerSegment, geo.Capacity()>>10, n)
	fmt.Printf("policy: %s", *policy)
	if cfg.Kind == cleaner.Hybrid {
		fmt.Printf(" (%d segments/partition, %d partitions)", cfg.PartitionSegments, h.Engine().Partitions())
	}
	fmt.Printf(", workload %s, seed %d\n\n", gen, *seed)
	fmt.Printf("cleaning cost:   %.3f cleaner programs per flushed page\n", cost)
	fmt.Printf("flushes:         %d\n", c.Flushes)
	fmt.Printf("segment cleans:  %d (%.1f flushes per clean)\n", c.SegmentCleans,
		float64(c.Flushes)/float64(max64(c.SegmentCleans, 1)))
	fmt.Printf("clean copies:    %d (%.1f live pages per clean)\n", c.CleanCopies,
		float64(c.CleanCopies)/float64(max64(c.SegmentCleans, 1)))
	fmt.Printf("erases:          %d, wear swaps: %d\n", c.Erases, c.WearSwaps)
	wmin, wmax := h.Array().WearSpread()
	fmt.Printf("wear spread:     %d..%d erases per segment\n", wmin, wmax)
	// Same block envysim prints, so the two tools read alike. The
	// harness is untimed — every operation runs to completion the
	// moment it is issued — so done always equals started and nothing
	// is ever preempted mid-flight.
	fmt.Printf("background ops:  kind  done/started  suspensions (§3.4; untimed harness, never preempted)\n")
	for _, row := range []struct {
		kind  stats.OpKind
		count int64
	}{
		{stats.OpFlush, c.Flushes},
		{stats.OpCleanCopy, c.CleanCopies},
		{stats.OpErase, c.Erases},
		{stats.OpWearSwap, c.WearSwaps},
	} {
		if row.count == 0 {
			continue
		}
		fmt.Printf("                 %-11v %d/%d  %d\n", row.kind, row.count, row.count, 0)
	}

	if err := h.Engine().CheckInvariants(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	if err := h.CheckMapping(); err != nil {
		log.Fatalf("mapping violation: %v", err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
