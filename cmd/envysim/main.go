// Command envysim runs the full-system eNVy simulation under the
// TPC-A workload (§5) and prints the measured I/O rates, latencies,
// controller breakdown, wear, and lifetime estimate.
//
// Example:
//
//	envysim -rate 8000 -seconds 1 -branches 2 -accounts 500
//	envysim -parallel 8 -depth 4 -rate 16000  # multi-outstanding hosts
//	envysim -parallel 8 -depth 16 -lanes -rate 30000  # lock-decomposed parallel service
//	envysim -parallel 8 -depth 16 -adaptive -rate 30000  # adaptive queue depth
//	envysim -paper -rate 30000 -seconds 2     # Figure 12 scale, ~2.5 GB RAM
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"envy/internal/cleaner"
	"envy/internal/core"
	"envy/internal/flash"
	"envy/internal/invariant"
	"envy/internal/lifetime"
	"envy/internal/maptier"
	"envy/internal/sim"
	"envy/internal/stats"
	"envy/internal/tpca"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("envysim: ")

	var (
		paper     = flag.Bool("paper", false, "use the paper's full 2 GB configuration (Figure 12)")
		rate      = flag.Float64("rate", 8000, "offered transaction rate (TPS)")
		seconds   = flag.Float64("seconds", 1, "simulated seconds to measure")
		warm      = flag.Float64("warm", 0.5, "simulated seconds of warm-up")
		branches  = flag.Int("branches", 2, "TPC-A branches (ignored with -paper)")
		accounts  = flag.Int("accounts", 500, "accounts per teller (ignored with -paper)")
		policy    = flag.String("policy", "hybrid", "cleaning policy: hybrid, lg, fifo, greedy")
		parallel  = flag.Int("parallel", 1, "concurrent bank programs (§6 extension)")
		depth     = flag.Int("depth", 1, "outstanding host requests (1 = the paper's single-outstanding host)")
		lanes     = flag.Bool("lanes", false, "lock-decomposed parallel host service: disjoint-footprint requests run on concurrent execution lanes")
		adaptive  = flag.Bool("adaptive", false, "adapt the effective host queue depth to the observed suspension rate")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		wearCheck = flag.Bool("wear", true, "enable 100-cycle wear leveling")
		flushPol  = flag.String("flush", "full", "flush policy: full (whole-page programs) or diff (page-differential logging)")
		maxChain  = flag.Int("diffchain", 0, "diff-chain length bound before promotion to a full-page flush (0 = default)")
		mapTier   = flag.Int("maptier", 0, "two-tier page table: SRAM mapping-page cache frames (0 = flat battery-backed table)")
		check     = flag.Bool("check", false, "run the whole-device invariant checker after warm-up and after the measured run")
	)
	flag.Parse()

	cfg := core.Config{
		Geometry:    flash.Geometry{PageSize: 256, PagesPerSegment: 128, Segments: 128, Banks: 8},
		BufferPages: 2048,
	}
	tcfg := tpca.Config{Branches: *branches, AccountsPerTeller: *accounts, Seed: *seed, InitialBalance: 1000}
	if *paper {
		cfg.Geometry = flash.PaperGeometry()
		cfg.BufferPages = 64 * 1024
		tcfg.Branches = 128
		tcfg.AccountsPerTeller = 10000
	}
	switch *policy {
	case "hybrid":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Hybrid, PartitionSegments: 16}
	case "lg":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Hybrid, PartitionSegments: 1}
	case "fifo":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Hybrid, PartitionSegments: cfg.Geometry.Segments - 1}
	case "greedy":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Greedy}
	default:
		log.Printf("unknown policy %q", *policy)
		os.Exit(2)
	}
	if *wearCheck {
		cfg.Cleaning.WearThreshold = 100
	}
	cfg.ParallelFlush = *parallel
	if *lanes {
		// Four page-table shards per bank: shard locks are admission-time
		// resources, not timed hardware, so finer sharding costs nothing on
		// the simulated clock and admits more disjoint-footprint batches.
		cfg.ParallelService = true
		cfg.PageTableShards = 4 * cfg.Geometry.Banks
	}
	if *mapTier > 0 {
		cfg.MapTier = &maptier.Params{CacheFrames: *mapTier}
	}
	switch *flushPol {
	case "full":
	case "diff":
		cfg.FlushPolicy = core.DiffFlush
		cfg.DiffMaxChain = *maxChain
	default:
		log.Printf("unknown flush policy %q", *flushPol)
		os.Exit(2)
	}

	dev, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %d MB flash, %d segments, %s cleaning, buffer %d pages (seed %d)\n",
		cfg.Geometry.Capacity()>>20, cfg.Geometry.Segments, *policy, dev.Config().BufferPages, *seed)
	flatBytes := dev.PageTable().SRAMBytes()
	if mt := dev.MapTier(); mt != nil {
		fmt.Printf("page table:       two-tier, %d mapping pages, %d cache frames; SRAM %d B directory + %d B cache = %d B (flat table would need %d B, %.1fx)\n",
			mt.Pages(), mt.CacheFrames(), mt.DirectoryBytes(), mt.CacheBytes(), mt.SRAMBytes(),
			flatBytes, float64(flatBytes)/float64(mt.SRAMBytes()))
	} else {
		fmt.Printf("page table:       flat battery-backed SRAM, %d B\n", flatBytes)
	}

	bank, err := tpca.Setup(dev, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	br, te, ac := bank.TreeHeights()
	fmt.Printf("database: %d accounts, index depths branch=%d teller=%d account=%d\n",
		bank.Accounts(), br, te, ac)

	if *depth < 1 {
		log.Printf("depth must be at least 1, got %d", *depth)
		os.Exit(2)
	}
	var dr *tpca.Driver
	switch {
	case *lanes:
		dr = tpca.NewDriverParallel(bank, *depth)
	case *adaptive:
		dr = tpca.NewDriverAdaptive(bank, *depth)
	default:
		dr = tpca.NewDriverDepth(bank, *depth)
	}
	if _, err := dr.Run(*rate, sim.Duration(*warm*1e9)); err != nil {
		log.Fatal(err)
	}
	if *check {
		if err := invariant.CheckDevice(dev); err != nil {
			log.Fatalf("invariant violation after warm-up: %v", err)
		}
	}
	res, err := dr.Run(*rate, sim.Duration(*seconds*1e9))
	if err != nil {
		log.Fatal(err)
	}
	if *check {
		if err := invariant.CheckDevice(dev); err != nil {
			log.Fatalf("invariant violation after measured run: %v", err)
		}
	}

	fmt.Printf("\noffered %.0f TPS for %.2fs simulated\n", res.Offered, res.Duration.Seconds())
	fmt.Printf("completed:        %d transactions (%.0f TPS)\n", res.Completed, res.TPS)
	fmt.Printf("read latency:     mean %dns  p99 %dns\n", int64(res.ReadMean), int64(res.ReadP99))
	fmt.Printf("write latency:    mean %dns  p99 %dns\n", int64(res.WriteMean), int64(res.WriteP99))
	fmt.Printf("txn latency:      mean %.1fµs\n", res.TxnLatency.Mean().Micros())
	if res.HostRequests > 0 {
		fmt.Printf("host queue:       depth %d (mean %.2f), sojourn p50 %dns  p95 %dns  p99 %dns  max %dns\n",
			*depth, res.HostMeanDepth,
			int64(res.HostP50), int64(res.HostP95), int64(res.HostP99), int64(res.HostMax))
	}
	if *lanes && res.HostBatches > 0 {
		fmt.Printf("parallel service: %d batches, %d requests batched, max batch %d, clean/flush overlap %dns\n",
			res.HostBatches, res.HostBatched, res.HostMaxBatch, int64(res.FlushCleanOverlap))
	}
	if *adaptive {
		fmt.Printf("adaptive depth:   effective %d of %d (%d suspensions observed)\n",
			res.HostEffectiveDepth, *depth, res.Suspensions)
	}
	fmt.Printf("flush rate:       %.0f pages/s, cleaning cost %.2f\n", res.FlushPagesPerSec, res.CleaningCost)
	b := res.Breakdown
	fmt.Printf("controller time:  read %.0f%%  write %.0f%%  flush %.0f%%  clean %.0f%%  erase %.0f%%  idle %.0f%%\n",
		100*b.Fraction(stats.Reading), 100*b.Fraction(stats.Writing), 100*b.Fraction(stats.Flushing),
		100*b.Fraction(stats.Cleaning), 100*b.Fraction(stats.Erasing), 100*b.Fraction(stats.Idle))
	wmin, wmax := dev.Array().WearSpread()
	fmt.Printf("wear:             %d..%d erases per segment (%d swaps)\n", wmin, wmax, res.Counters.WearSwaps)
	if *flushPol == "diff" {
		c := res.Counters
		fmt.Printf("diff logging:     %d records in %d units, %d merges, %d promotions, %d B programmed\n",
			c.DiffRecordsWritten, c.DiffUnitPrograms, c.DiffMerges, c.DiffPromotions, dev.Array().ProgramBytes())
	}
	if mt := dev.MapTier(); mt != nil {
		mc := mt.Counters()
		fmt.Printf("mapping cache:    %.1f%% hit (%d hits, %d misses), %d writebacks (%d forced), %d translation cleans\n",
			100*mc.HitRate(), mc.Hits, mc.Misses, mc.Writebacks+mc.SyncWritebacks, mc.SyncWritebacks, mc.Cleans)
	}
	ops := dev.OpStats()
	fmt.Printf("background ops:   kind  done/started  suspensions (§3.4 preempted mid-flight)\n")
	for _, k := range []stats.OpKind{stats.OpFlush, stats.OpDiffFlush, stats.OpCleanCopy, stats.OpErase, stats.OpWearSwap, stats.OpMapFlush, stats.OpMapClean, stats.OpMapErase} {
		oc := ops.Get(k)
		if oc.Started == 0 {
			continue
		}
		fmt.Printf("                  %-11v %d/%d  %d\n", k, oc.Completed, oc.Started, oc.Suspensions)
	}

	est := lifetime.Estimate{
		CapacityBytes: cfg.Geometry.Capacity(),
		PageBytes:     cfg.Geometry.PageSize,
		SpecCycles:    flash.PaperTiming().SpecCycles,
		FlushRate:     res.FlushPagesPerSec,
		CleaningCost:  res.CleaningCost,
	}
	fmt.Printf("%s\n", est)

	if err := dev.CheckConsistency(); err != nil {
		log.Fatalf("consistency check failed: %v", err)
	}
}
