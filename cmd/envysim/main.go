// Command envysim runs the full-system eNVy simulation under the
// TPC-A workload (§5) and prints the measured I/O rates, latencies,
// controller breakdown, wear, and lifetime estimate.
//
// Example:
//
//	envysim -rate 8000 -seconds 1 -branches 2 -accounts 500
//	envysim -parallel 8 -depth 4 -rate 16000  # multi-outstanding hosts
//	envysim -parallel 8 -depth 16 -lanes -rate 30000  # lock-decomposed parallel service
//	envysim -parallel 8 -depth 16 -adaptive -rate 30000  # adaptive queue depth
//	envysim -bgworkers 8 -rate 16000          # background payload copies on worker threads
//	envysim -paper -rate 30000 -seconds 2     # Figure 12 scale, ~2.5 GB RAM
//
// With -cluster N the command instead drives the sharded service tier:
// N member devices behind one logical-page namespace, loaded with a
// YCSB Zipfian mix, optionally crashing and recovering one member
// mid-load:
//
//	envysim -cluster 4 -mix a -theta 0.9 -rate 1000000 -seconds 0.1
//	envysim -cluster 4 -crash 2 -check    # mid-load crash, verify on drain
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"envy/internal/cleaner"
	"envy/internal/cluster"
	"envy/internal/core"
	"envy/internal/flash"
	"envy/internal/invariant"
	"envy/internal/lifetime"
	"envy/internal/maptier"
	"envy/internal/sim"
	"envy/internal/stats"
	"envy/internal/tpca"
	"envy/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("envysim: ")

	var (
		paper     = flag.Bool("paper", false, "use the paper's full 2 GB configuration (Figure 12)")
		rate      = flag.Float64("rate", 8000, "offered transaction rate (TPS)")
		seconds   = flag.Float64("seconds", 1, "simulated seconds to measure")
		warm      = flag.Float64("warm", 0.5, "simulated seconds of warm-up")
		branches  = flag.Int("branches", 2, "TPC-A branches (ignored with -paper)")
		accounts  = flag.Int("accounts", 500, "accounts per teller (ignored with -paper)")
		policy    = flag.String("policy", "hybrid", "cleaning policy: hybrid, lg, fifo, greedy")
		parallel  = flag.Int("parallel", 1, "concurrent bank programs (§6 extension)")
		depth     = flag.Int("depth", 1, "outstanding host requests (1 = the paper's single-outstanding host)")
		lanes     = flag.Bool("lanes", false, "lock-decomposed parallel host service: disjoint-footprint requests run on concurrent execution lanes")
		bgworkers = flag.Int("bgworkers", 0, "background worker pool: run flush and cleaning payload copies on this many OS threads with per-bank lanes (0 = serial; results are bit-identical either way)")
		adaptive  = flag.Bool("adaptive", false, "adapt the effective host queue depth to the observed suspension rate")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		wearCheck = flag.Bool("wear", true, "enable 100-cycle wear leveling")
		flushPol  = flag.String("flush", "full", "flush policy: full (whole-page programs) or diff (page-differential logging)")
		maxChain  = flag.Int("diffchain", 0, "diff-chain length bound before promotion to a full-page flush (0 = default)")
		mapTier   = flag.Int("maptier", 0, "two-tier page table: SRAM mapping-page cache frames (0 = flat battery-backed table)")
		check     = flag.Bool("check", false, "run the whole-device invariant checker after warm-up and after the measured run")
		clusterN  = flag.Int("cluster", 0, "run the sharded service tier with this many member devices (0 = single-device TPC-A mode)")
		mix       = flag.String("mix", "a", "cluster mode: YCSB mix class a (50/50), b (95/5), or c (read-only)")
		theta     = flag.Float64("theta", 0.9, "cluster mode: Zipfian skew of the page popularity distribution")
		crash     = flag.Int("crash", -1, "cluster mode: crash this member mid-load and recover it (-1 = no crash)")
	)
	flag.Parse()

	if *clusterN > 0 {
		runCluster(*clusterN, *mix, *theta, *crash, *rate, *seconds, *warm, *seed, *check)
		return
	}

	cfg := core.Config{
		Geometry:    flash.Geometry{PageSize: 256, PagesPerSegment: 128, Segments: 128, Banks: 8},
		BufferPages: 2048,
	}
	tcfg := tpca.Config{Branches: *branches, AccountsPerTeller: *accounts, Seed: *seed, InitialBalance: 1000}
	if *paper {
		cfg.Geometry = flash.PaperGeometry()
		cfg.BufferPages = 64 * 1024
		tcfg.Branches = 128
		tcfg.AccountsPerTeller = 10000
	}
	switch *policy {
	case "hybrid":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Hybrid, PartitionSegments: 16}
	case "lg":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Hybrid, PartitionSegments: 1}
	case "fifo":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Hybrid, PartitionSegments: cfg.Geometry.Segments - 1}
	case "greedy":
		cfg.Cleaning = cleaner.Config{Kind: cleaner.Greedy}
	default:
		log.Printf("unknown policy %q", *policy)
		os.Exit(2)
	}
	if *wearCheck {
		cfg.Cleaning.WearThreshold = 100
	}
	cfg.ParallelFlush = *parallel
	cfg.BGWorkers = *bgworkers
	if *lanes {
		// Four page-table shards per bank: shard locks are admission-time
		// resources, not timed hardware, so finer sharding costs nothing on
		// the simulated clock and admits more disjoint-footprint batches.
		cfg.ParallelService = true
		cfg.PageTableShards = 4 * cfg.Geometry.Banks
	}
	if *mapTier > 0 {
		cfg.MapTier = &maptier.Params{CacheFrames: *mapTier}
	}
	switch *flushPol {
	case "full":
	case "diff":
		cfg.FlushPolicy = core.DiffFlush
		cfg.DiffMaxChain = *maxChain
	default:
		log.Printf("unknown flush policy %q", *flushPol)
		os.Exit(2)
	}

	dev, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()
	fmt.Printf("device: %d MB flash, %d segments, %s cleaning, buffer %d pages (seed %d)\n",
		cfg.Geometry.Capacity()>>20, cfg.Geometry.Segments, *policy, dev.Config().BufferPages, *seed)
	flatBytes := dev.PageTable().SRAMBytes()
	if mt := dev.MapTier(); mt != nil {
		fmt.Printf("page table:       two-tier, %d mapping pages, %d cache frames; SRAM %d B directory + %d B cache = %d B (flat table would need %d B, %.1fx)\n",
			mt.Pages(), mt.CacheFrames(), mt.DirectoryBytes(), mt.CacheBytes(), mt.SRAMBytes(),
			flatBytes, float64(flatBytes)/float64(mt.SRAMBytes()))
	} else {
		fmt.Printf("page table:       flat battery-backed SRAM, %d B\n", flatBytes)
	}

	bank, err := tpca.Setup(dev, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	br, te, ac := bank.TreeHeights()
	fmt.Printf("database: %d accounts, index depths branch=%d teller=%d account=%d\n",
		bank.Accounts(), br, te, ac)

	if *depth < 1 {
		log.Printf("depth must be at least 1, got %d", *depth)
		os.Exit(2)
	}
	var dr *tpca.Driver
	switch {
	case *lanes:
		dr = tpca.NewDriverParallel(bank, *depth)
	case *adaptive:
		dr = tpca.NewDriverAdaptive(bank, *depth)
	default:
		dr = tpca.NewDriverDepth(bank, *depth)
	}
	if _, err := dr.Run(*rate, sim.Duration(*warm*1e9)); err != nil {
		log.Fatal(err)
	}
	if *check {
		if err := invariant.CheckDevice(dev); err != nil {
			log.Fatalf("invariant violation after warm-up: %v", err)
		}
	}
	res, err := dr.Run(*rate, sim.Duration(*seconds*1e9))
	if err != nil {
		log.Fatal(err)
	}
	if *check {
		if err := invariant.CheckDevice(dev); err != nil {
			log.Fatalf("invariant violation after measured run: %v", err)
		}
	}

	fmt.Printf("\noffered %.0f TPS for %.2fs simulated\n", res.Offered, res.Duration.Seconds())
	fmt.Printf("completed:        %d transactions (%.0f TPS)\n", res.Completed, res.TPS)
	fmt.Printf("read latency:     mean %dns  p99 %dns\n", int64(res.ReadMean), int64(res.ReadP99))
	fmt.Printf("write latency:    mean %dns  p99 %dns\n", int64(res.WriteMean), int64(res.WriteP99))
	fmt.Printf("txn latency:      mean %.1fµs\n", res.TxnLatency.Mean().Micros())
	if res.HostRequests > 0 {
		fmt.Printf("host queue:       depth %d (mean %.2f), sojourn p50 %dns  p95 %dns  p99 %dns  max %dns\n",
			*depth, res.HostMeanDepth,
			int64(res.HostP50), int64(res.HostP95), int64(res.HostP99), int64(res.HostMax))
	}
	if *lanes && res.HostBatches > 0 {
		fmt.Printf("parallel service: %d batches, %d requests batched, max batch %d, clean/flush overlap %dns\n",
			res.HostBatches, res.HostBatched, res.HostMaxBatch, int64(res.FlushCleanOverlap))
	}
	if *adaptive {
		fmt.Printf("adaptive depth:   effective %d of %d (%d suspensions observed)\n",
			res.HostEffectiveDepth, *depth, res.Suspensions)
	}
	if p := dev.Pool(); p != nil {
		jobs, bytes, waits := p.Stats()
		fmt.Printf("bg worker pool:   %d workers, %d payload jobs, %d B moved (%d lane joins blocked)\n",
			p.Workers(), jobs, bytes, waits)
	}
	fmt.Printf("flush rate:       %.0f pages/s, cleaning cost %.2f\n", res.FlushPagesPerSec, res.CleaningCost)
	b := res.Breakdown
	fmt.Printf("controller time:  read %.0f%%  write %.0f%%  flush %.0f%%  clean %.0f%%  erase %.0f%%  idle %.0f%%\n",
		100*b.Fraction(stats.Reading), 100*b.Fraction(stats.Writing), 100*b.Fraction(stats.Flushing),
		100*b.Fraction(stats.Cleaning), 100*b.Fraction(stats.Erasing), 100*b.Fraction(stats.Idle))
	wmin, wmax := dev.Array().WearSpread()
	fmt.Printf("wear:             %d..%d erases per segment (%d swaps)\n", wmin, wmax, res.Counters.WearSwaps)
	// Print whenever the counters are nonzero, not only when -flush=diff
	// was requested: recovery replay and policy switches can leave diff
	// activity on the books regardless of the current flag.
	if c := res.Counters; *flushPol == "diff" ||
		c.DiffRecordsWritten != 0 || c.DiffUnitPrograms != 0 || c.DiffMerges != 0 || c.DiffPromotions != 0 {
		fmt.Printf("diff logging:     %d records in %d units, %d merges, %d promotions, %d B programmed\n",
			c.DiffRecordsWritten, c.DiffUnitPrograms, c.DiffMerges, c.DiffPromotions, dev.Array().ProgramBytes())
	}
	if mt := dev.MapTier(); mt != nil {
		mc := mt.Counters()
		fmt.Printf("mapping cache:    %.1f%% hit (%d hits, %d misses), %d writebacks (%d forced), %d translation cleans\n",
			100*mc.HitRate(), mc.Hits, mc.Misses, mc.Writebacks+mc.SyncWritebacks, mc.SyncWritebacks, mc.Cleans)
	}
	ops := dev.OpStats()
	fmt.Printf("background ops:   kind  done/started  suspensions (§3.4 preempted mid-flight)\n")
	for _, k := range []stats.OpKind{stats.OpFlush, stats.OpDiffFlush, stats.OpCleanCopy, stats.OpErase, stats.OpWearSwap, stats.OpMapFlush, stats.OpMapClean, stats.OpMapErase} {
		oc := ops.Get(k)
		// Skip only when every counter is zero: an op kind can show
		// completions or suspensions without starts after a power-cycle
		// recovery resets the in-flight set.
		if oc.Started == 0 && oc.Completed == 0 && oc.Suspensions == 0 && oc.Resumes == 0 {
			continue
		}
		fmt.Printf("                  %-11v %d/%d  %d\n", k, oc.Completed, oc.Started, oc.Suspensions)
	}

	est := lifetime.Estimate{
		CapacityBytes: cfg.Geometry.Capacity(),
		PageBytes:     cfg.Geometry.PageSize,
		SpecCycles:    flash.PaperTiming().SpecCycles,
		FlushRate:     res.FlushPagesPerSec,
		CleaningCost:  res.CleaningCost,
	}
	fmt.Printf("%s\n", est)

	if err := dev.CheckConsistency(); err != nil {
		log.Fatalf("consistency check failed: %v", err)
	}
}

// runCluster drives the sharded service tier: members small-profile
// devices behind one namespace, loaded with a YCSB Zipfian mix at the
// offered rate for the given simulated window, optionally crashing and
// recovering one member mid-load.
func runCluster(members int, mixClass string, theta float64, crashShard int, rate, seconds, warmSecs float64, seed uint64, check bool) {
	c, err := cluster.New(cluster.Config{
		Members: members,
		Member:  cluster.DefaultMemberConfig(),
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("cluster: %d members, %d-page namespace (%d B pages), hash-ring placement (seed %d)\n",
		c.Members(), c.Pages(), c.PageSize(), seed)
	for i, s := range st.Shards {
		fmt.Printf("  member %d: %d pages (%.1f%% of namespace)\n",
			i, s.Pages, 100*float64(s.Pages)/float64(c.Pages()))
	}

	gen, err := workload.YCSB(mixClass, c.Pages(), theta, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, offered %.0f ops/s\n", gen, rate)

	if warmOps := int(rate * warmSecs); warmOps > 0 {
		warmGen, err := workload.YCSB(mixClass, c.Pages(), theta, seed+2)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cluster.RunLoad(c, cluster.Load{
			Gen: warmGen, Rate: rate, Ops: warmOps, Seed: seed + 3,
		}); err != nil {
			log.Fatal(err)
		}
		c.ResetStats()
	}

	ops := int(rate * seconds)
	if ops < 1 {
		log.Fatalf("rate %.0f over %.2fs offers no operations", rate, seconds)
	}
	l := cluster.Load{
		Gen: gen, Rate: rate, Ops: ops, Seed: seed + 4,
		Verify: crashShard >= 0, Check: check,
	}
	if crashShard >= 0 {
		if crashShard >= members {
			log.Fatalf("crash member %d out of range [0, %d)", crashShard, members)
		}
		l.CrashShard = crashShard
		l.CrashAtOp = ops / 3
		l.RecoverAtOp = 2 * ops / 3
	}
	res, err := cluster.RunLoad(c, l)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noffered %d ops over %.2fs simulated\n", res.Offered, res.Elapsed.Seconds())
	fmt.Printf("completed:        %d ops (%.0f TPS), %d acked, %d failed, %d rejected\n",
		res.Completed, res.TPS, res.Acked, res.Failed, res.Rejected)
	fmt.Printf("sojourn latency:  p50 %dns  p95 %dns  p99 %dns  max %dns\n",
		int64(res.P50), int64(res.P95), int64(res.P99), int64(res.Max))
	fmt.Printf("backpressure:     %d submissions at or over effective depth\n", res.Backpressured)
	if res.Crashed {
		fmt.Printf("crash timeline:   member %d armed @%.2fms, detected @%.2fms, rejoined @%.2fms, drained @%.2fms (drain %.2fms)\n",
			res.CrashShard,
			float64(res.CrashArmedAt)/1e6, float64(res.CrashDetectedAt)/1e6,
			float64(res.RejoinedAt)/1e6, float64(res.DrainedAt)/1e6, float64(res.DrainTime)/1e6)
		rep := res.Recovery
		fmt.Printf("recovery:         %d flushes discarded, %d stray, %d diff units discarded, %d diff entries dropped\n",
			rep.FlushesDiscarded, rep.StrayFlushes, rep.DiffUnitsDiscarded, rep.DiffEntriesDropped)
		fmt.Printf("verification:     %d acknowledged writes read back, %d lost\n", res.VerifiedWrites, res.LostAcked)
		if res.LostAcked != 0 {
			log.Fatalf("%d acknowledged writes lost", res.LostAcked)
		}
	}

	st = c.Stats()
	fmt.Printf("per member:       id  submitted  acked  failed  rejected  backpressured  depth  reads  writes  flushes  cleans\n")
	for i, s := range st.Shards {
		fmt.Printf("                  %-3d %-10d %-6d %-7d %-9d %-14d %-6d %-6d %-7d %-8d %d\n",
			i, s.Submitted, s.Acked, s.Failed, s.Rejected, s.Backpressured,
			s.EffectiveDepth, s.Device.Reads, s.Device.Writes, s.Device.Flushes, s.Device.SegmentCleans)
	}
	if !check {
		// -check runs CheckAll inside the load; otherwise verify the
		// members' internal consistency here before exiting.
		if err := c.CheckAll(); err != nil {
			log.Fatalf("cluster consistency check failed: %v", err)
		}
	}
}
