// Command experiments regenerates the tables and figures of the eNVy
// paper's evaluation (§4–§5).
//
// Usage:
//
//	experiments [-scale small|paper] [-json] [experiment ...]
//
// With no arguments every experiment runs. Individual experiments:
// fig1, fig6, fig8, fig9, fig10, fig12, fig13, fig14, fig15,
// breakdown, lifetime, parallel, hostdepth, parhost, parwall, bgpar,
// ablations, maptier, diffflush, cluster.
//
// -json additionally writes BENCH_results.json: one record per
// experiment with its headline metrics, the scale profile, the seed,
// and the wall time it took — the same metric vocabulary the
// bench_test.go benchmarks report, for machine comparison across
// commits.
//
// The default small scale finishes in about a minute; -scale paper
// runs the full 2 GB Figure 12 configuration and needs ~2.5 GB of
// memory and substantially more time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"envy/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or paper")
	jsonFlag := flag.Bool("json", false, "also write BENCH_results.json with machine-readable results")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "small":
		sc = experiments.Small()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := flag.Args()
	all := len(want) == 0
	selected := func(name string) bool {
		if all {
			return true
		}
		for _, w := range want {
			if w == name {
				return true
			}
		}
		return false
	}

	out := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}

	// record accumulates the machine-readable results for -json: the
	// experiments themselves never read the wall clock (simulated-time
	// territory), so the driver times them here.
	var records []experiments.BenchRecord
	record := func(name string, metrics map[string]float64, start time.Time) {
		records = append(records, experiments.BenchRecord{
			Name:        name,
			Scale:       sc.Name,
			Seed:        sc.Seed,
			Metrics:     metrics,
			WallSeconds: time.Since(start).Seconds(),
		})
	}

	// Rate sweep serves both fig13 and fig15; run it once.
	var rateSweep []experiments.RatePoint
	needSweep := selected("fig13") || selected("fig15")

	if selected("fig1") {
		experiments.Fig1Table().Print(out)
	}
	if selected("fig6") {
		start := time.Now()
		rows, err := experiments.Fig6(sc)
		if err != nil {
			fail("fig6", err)
		}
		experiments.Fig6Table(rows).Print(out)
		record("fig6", experiments.Fig6Metrics(rows), start)
	}
	if selected("fig8") {
		start := time.Now()
		rows, err := experiments.Fig8(sc)
		if err != nil {
			fail("fig8", err)
		}
		experiments.Fig8Table(rows).Print(out)
		record("fig8", experiments.Fig8Metrics(rows), start)
	}
	if selected("fig9") {
		start := time.Now()
		rows, err := experiments.Fig9(sc)
		if err != nil {
			fail("fig9", err)
		}
		experiments.Fig9Table(rows).Print(out)
		record("fig9", experiments.Fig9Metrics(rows), start)
	}
	if selected("fig10") {
		start := time.Now()
		rows, err := experiments.Fig10(sc)
		if err != nil {
			fail("fig10", err)
		}
		experiments.Fig10Table(rows).Print(out)
		record("fig10", experiments.Fig10Metrics(rows), start)
	}
	if selected("fig12") {
		experiments.Fig12Table(sc).Print(out)
	}
	if needSweep {
		start := time.Now()
		var err error
		rateSweep, err = experiments.RateSweep(sc)
		if err != nil {
			fail("rate sweep", err)
		}
		record("rate_sweep", experiments.RateMetrics(rateSweep), start)
	}
	if selected("fig13") {
		experiments.Fig13Table(rateSweep).Print(out)
	}
	if selected("fig14") {
		start := time.Now()
		pts, labels, err := experiments.Fig14(sc)
		if err != nil {
			fail("fig14", err)
		}
		experiments.Fig14Table(pts, labels).Print(out)
		record("fig14", experiments.Fig14Metrics(pts, labels), start)
	}
	if selected("fig15") {
		experiments.Fig15Table(rateSweep).Print(out)
	}
	if selected("breakdown") {
		start := time.Now()
		r, err := experiments.Breakdown(sc)
		if err != nil {
			fail("breakdown", err)
		}
		experiments.BreakdownTable(r).Print(out)
		record("breakdown", experiments.BreakdownMetrics(r), start)
	}
	if selected("lifetime") {
		start := time.Now()
		r, err := experiments.Lifetime(sc)
		if err != nil {
			fail("lifetime", err)
		}
		experiments.LifetimeTable(r).Print(out)
		record("lifetime", experiments.LifetimeMetrics(r), start)
	}
	if selected("parallel") {
		start := time.Now()
		pts, err := experiments.Parallel(sc)
		if err != nil {
			fail("parallel", err)
		}
		experiments.ParallelTable(pts).Print(out)
		record("parallel", experiments.ParallelMetrics(pts), start)
	}
	if selected("hostdepth") {
		start := time.Now()
		pts, err := experiments.HostDepth(sc)
		if err != nil {
			fail("hostdepth", err)
		}
		experiments.HostDepthTable(pts).Print(out)
		record("hostdepth", experiments.HostDepthMetrics(pts), start)
	}
	if selected("parhost") {
		start := time.Now()
		pts, err := experiments.ParallelHost(sc)
		if err != nil {
			fail("parhost", err)
		}
		experiments.ParallelHostTable(pts).Print(out)
		record("parhost", experiments.ParallelHostMetrics(pts), start)
	}
	if selected("parwall") {
		// Wall-clock scaling of the lock-decomposed service: one prepared
		// rig, driven at several GOMAXPROCS settings. The wall clock lives
		// here in the driver (simulated-time code never reads it); num_cpu
		// is recorded because wall scaling is bounded by the machine —
		// GOMAXPROCS above the core count cannot speed anything up.
		start := time.Now()
		rig, err := experiments.ParallelWallPrepare(sc)
		if err != nil {
			fail("parwall", err)
		}
		metrics := map[string]float64{"num_cpu": float64(runtime.NumCPU())}
		t := experiments.Table{
			Title:  "parallel host service: wall-clock scaling",
			Note:   fmt.Sprintf("%d disjoint read lanes; host machine has %d CPU(s)", rig.Lanes(), runtime.NumCPU()),
			Header: []string{"GOMAXPROCS", "wall seconds", "requests", "MB read"},
		}
		for _, procs := range []int{1, 4, 8} {
			prev := runtime.GOMAXPROCS(procs)
			driveStart := time.Now()
			w, err := rig.Drive(experiments.ParallelWallRounds)
			wall := time.Since(driveStart).Seconds()
			runtime.GOMAXPROCS(prev)
			if err != nil {
				fail("parwall", err)
			}
			metrics[fmt.Sprintf("gomaxprocs%d_wall_seconds", procs)] = wall
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", procs), fmt.Sprintf("%.3f", wall),
				fmt.Sprintf("%d", w.Requests), fmt.Sprintf("%.1f", float64(w.BytesRead)/(1<<20)),
			})
		}
		t.Print(out)
		record("parwall", metrics, start)
	}
	if selected("bgpar") {
		// Wall-clock effect of the background worker pool: the same
		// saturated flush/clean flood driven serial (BGWorkers=0) and
		// pooled (one worker per bank). Counter identity is the
		// determinism evidence; the speedup gate binds only on machines
		// with enough cores (num_cpu records the provenance).
		start := time.Now()
		serialRig, err := experiments.BGParPrepare(0)
		if err != nil {
			fail("bgpar", err)
		}
		serialStart := time.Now()
		serialCtr, err := serialRig.Drive(experiments.BGParRounds)
		serialWall := time.Since(serialStart).Seconds()
		serialRig.Close()
		if err != nil {
			fail("bgpar", err)
		}
		pooledRig, err := experiments.BGParPrepare(experiments.BGParWorkers)
		if err != nil {
			fail("bgpar", err)
		}
		pooledStart := time.Now()
		pooledCtr, err := pooledRig.Drive(experiments.BGParRounds)
		pooledWall := time.Since(pooledStart).Seconds()
		jobs, bytes := pooledRig.PoolStats()
		pooledRig.Close()
		if err != nil {
			fail("bgpar", err)
		}
		if err := experiments.BGParCheckIdentical(serialCtr, pooledCtr); err != nil {
			fail("bgpar", err)
		}
		if err := experiments.BGParCheckSpeedup(serialWall, pooledWall, runtime.NumCPU()); err != nil {
			fail("bgpar", err)
		}
		t := experiments.Table{
			Title: "background worker pool: wall-clock speedup",
			Note: fmt.Sprintf("16 KB pages, 8 banks, %d workers; counters bit-identical; host machine has %d CPU(s)",
				experiments.BGParWorkers, runtime.NumCPU()),
			Header: []string{"path", "wall seconds", "flushes", "clean copies", "pool jobs", "pool MB"},
		}
		t.Rows = append(t.Rows, []string{"serial", fmt.Sprintf("%.3f", serialWall),
			fmt.Sprintf("%d", serialCtr.Flushes), fmt.Sprintf("%d", serialCtr.CleanCopies), "0", "0.0"})
		t.Rows = append(t.Rows, []string{"pooled", fmt.Sprintf("%.3f", pooledWall),
			fmt.Sprintf("%d", pooledCtr.Flushes), fmt.Sprintf("%d", pooledCtr.CleanCopies),
			fmt.Sprintf("%d", jobs), fmt.Sprintf("%.1f", float64(bytes)/(1<<20))})
		t.Print(out)
		record("bgpar", map[string]float64{
			"num_cpu":             float64(runtime.NumCPU()),
			"serial_wall_seconds": serialWall,
			"pooled_wall_seconds": pooledWall,
			"speedup":             serialWall / pooledWall,
			"flushes":             float64(pooledCtr.Flushes),
			"clean_copies":        float64(pooledCtr.CleanCopies),
			"pool_jobs":           float64(jobs),
			"pool_bytes":          float64(bytes),
		}, start)
	}
	if selected("ablations") {
		start := time.Now()
		rows, err := experiments.PolicyAblations(sc)
		if err != nil {
			fail("ablations", err)
		}
		experiments.AblationTable(rows).Print(out)
		record("ablations", experiments.AblationMetrics(rows), start)
	}
	if selected("maptier") {
		start := time.Now()
		res, err := experiments.MapTier(sc)
		if err != nil {
			fail("maptier", err)
		}
		experiments.MapTierTable(res).Print(out)
		record("maptier", experiments.MapTierMetrics(res), start)
	}
	if selected("diffflush") {
		start := time.Now()
		res, err := experiments.DiffFlush(sc)
		if err != nil {
			fail("diffflush", err)
		}
		experiments.DiffFlushTable(res).Print(out)
		record("diffflush", experiments.DiffFlushMetrics(res), start)
	}
	if selected("cluster") {
		start := time.Now()
		res, err := experiments.Cluster(sc)
		if err != nil {
			fail("cluster", err)
		}
		experiments.ClusterTable(res).Print(out)
		metrics := experiments.ClusterMetrics(res)
		metrics["num_cpu"] = float64(runtime.NumCPU())
		record("cluster", metrics, start)
	}

	if *jsonFlag {
		f, err := os.Create("BENCH_results.json")
		if err != nil {
			fail("json", err)
		}
		if err := experiments.WriteBenchJSON(f, records); err != nil {
			f.Close()
			fail("json", err)
		}
		if err := f.Close(); err != nil {
			fail("json", err)
		}
		fmt.Fprintf(os.Stderr, "wrote BENCH_results.json (%d records)\n", len(records))
	}
}
