// Command experiments regenerates the tables and figures of the eNVy
// paper's evaluation (§4–§5).
//
// Usage:
//
//	experiments [-scale small|paper] [experiment ...]
//
// With no arguments every experiment runs. Individual experiments:
// fig1, fig6, fig8, fig9, fig10, fig12, fig13, fig14, fig15,
// breakdown, lifetime, parallel, ablations.
//
// The default small scale finishes in about a minute; -scale paper
// runs the full 2 GB Figure 12 configuration and needs ~2.5 GB of
// memory and substantially more time.
package main

import (
	"flag"
	"fmt"
	"os"

	"envy/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or paper")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "small":
		sc = experiments.Small()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := flag.Args()
	all := len(want) == 0
	selected := func(name string) bool {
		if all {
			return true
		}
		for _, w := range want {
			if w == name {
				return true
			}
		}
		return false
	}

	out := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}

	// Rate sweep serves both fig13 and fig15; run it once.
	var rateSweep []experiments.RatePoint
	needSweep := selected("fig13") || selected("fig15")

	if selected("fig1") {
		experiments.Fig1Table().Print(out)
	}
	if selected("fig6") {
		rows, err := experiments.Fig6(sc)
		if err != nil {
			fail("fig6", err)
		}
		experiments.Fig6Table(rows).Print(out)
	}
	if selected("fig8") {
		rows, err := experiments.Fig8(sc)
		if err != nil {
			fail("fig8", err)
		}
		experiments.Fig8Table(rows).Print(out)
	}
	if selected("fig9") {
		rows, err := experiments.Fig9(sc)
		if err != nil {
			fail("fig9", err)
		}
		experiments.Fig9Table(rows).Print(out)
	}
	if selected("fig10") {
		rows, err := experiments.Fig10(sc)
		if err != nil {
			fail("fig10", err)
		}
		experiments.Fig10Table(rows).Print(out)
	}
	if selected("fig12") {
		experiments.Fig12Table(sc).Print(out)
	}
	if needSweep {
		var err error
		rateSweep, err = experiments.RateSweep(sc)
		if err != nil {
			fail("rate sweep", err)
		}
	}
	if selected("fig13") {
		experiments.Fig13Table(rateSweep).Print(out)
	}
	if selected("fig14") {
		pts, labels, err := experiments.Fig14(sc)
		if err != nil {
			fail("fig14", err)
		}
		experiments.Fig14Table(pts, labels).Print(out)
	}
	if selected("fig15") {
		experiments.Fig15Table(rateSweep).Print(out)
	}
	if selected("breakdown") {
		r, err := experiments.Breakdown(sc)
		if err != nil {
			fail("breakdown", err)
		}
		experiments.BreakdownTable(r).Print(out)
	}
	if selected("lifetime") {
		r, err := experiments.Lifetime(sc)
		if err != nil {
			fail("lifetime", err)
		}
		experiments.LifetimeTable(r).Print(out)
	}
	if selected("parallel") {
		pts, err := experiments.Parallel(sc)
		if err != nil {
			fail("parallel", err)
		}
		experiments.ParallelTable(pts).Print(out)
	}
	if selected("ablations") {
		rows, err := experiments.PolicyAblations(sc)
		if err != nil {
			fail("ablations", err)
		}
		experiments.AblationTable(rows).Print(out)
	}
}
