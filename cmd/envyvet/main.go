// Command envyvet runs the module's static-analysis suite (simtime,
// flashstate, panicpolicy, exhaustive, schedstate, shardlock — see
// internal/analysis) in two modes.
//
// Standalone, for humans:
//
//	go run ./cmd/envyvet ./...
//
// shells out to `go list -deps -export -test -json` for package facts
// and compiler export data, type-checks every module package
// (including test variants) from source, and prints findings as
// file:line:col: message, exiting nonzero if there are any.
//
// As a vet tool, for CI and `go vet` caching:
//
//	go build -o envyvet ./cmd/envyvet
//	go vet -vettool=$(pwd)/envyvet ./...
//
// speaks the go vet unitchecker protocol: -V=full for the tool
// fingerprint, then one .cfg JSON file per package naming its sources
// and the export data of its dependencies.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"envy/internal/analysis"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags; go vet asks for a JSON list.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion emits the fingerprint line the go command caches vet
// results under. The format must be "<name> version <version>", and a
// hash of the tool's own binary goes into the version token so
// rebuilding envyvet invalidates stale vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version 1.0.0-%x\n", name, h.Sum(nil)[:16])
}

// scrubImportPath removes the " [pkg.test]" disambiguator go appends
// to test-variant import paths, so analyzers see the declared path.
func scrubImportPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// newInfo allocates the type-checker result maps the analyzers need.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// analyzePackage runs the whole suite over one type-checked package
// and prints findings; it returns the number found. seen (optional)
// dedupes repeats: with `go list -test`, a package with in-package
// test files is analyzed twice — plain and test-augmented — and its
// non-test files would otherwise report everything twice.
func analyzePackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, seen map[string]bool) int {
	var diags []analysis.Diagnostic
	for _, a := range analysis.All() {
		if err := analysis.Run(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: %s on %s: %v\n", a.Name, pkg.Path(), err)
		}
	}
	analysis.SortDiagnostics(fset, diags)
	count := 0
	for _, d := range diags {
		line := fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message)
		if seen != nil {
			if seen[line] {
				continue
			}
			seen[line] = true
		}
		fmt.Fprintln(os.Stderr, line)
		count++
	}
	return count
}

// ---------------- go vet unitchecker protocol ----------------

// vetConfig is the package description the go command writes for a
// vet tool (the fields of x/tools' unitchecker.Config this driver
// consumes).
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "envyvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// This suite keeps no cross-package facts, but the protocol
	// requires the facts file to exist for dependent packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := newInfo()
	pkg, err := conf.Check(scrubImportPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
		return 1
	}
	if analyzePackage(fset, files, pkg, info, nil) > 0 {
		return 2
	}
	return 0
}

// ---------------- standalone driver ----------------

// listPackage is the subset of `go list -json` output the standalone
// loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "envyvet: go list: %v\n", err)
		return 1
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: decoding go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		switch {
		case p.Standard, p.Module == nil, len(p.GoFiles) == 0:
			continue // outside the module, or nothing to analyze
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // generated test main
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	findings, failed := 0, false
	seen := make(map[string]bool)
	for _, p := range targets {
		var files []*ast.File
		parseFailed := false
		for _, name := range p.GoFiles {
			if !filepath.IsAbs(name) {
				name = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
				parseFailed = true
				break
			}
			files = append(files, f)
		}
		if parseFailed {
			failed = true
			continue
		}
		// A fresh importer per package: test-variant import maps can
		// bind the same path to different export data, so the
		// importer's internal cache must not leak across packages.
		imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			if canonical, ok := p.ImportMap[path]; ok {
				path = canonical
			}
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})
		conf := types.Config{Importer: imp}
		info := newInfo()
		pkg, err := conf.Check(scrubImportPath(p.ImportPath), fset, files, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: type-checking %s: %v\n", p.ImportPath, err)
			failed = true
			continue
		}
		findings += analyzePackage(fset, files, pkg, info, seen)
	}
	if failed {
		return 1
	}
	if findings > 0 {
		return 2
	}
	return 0
}
