// Command envyvet runs the module's static-analysis suite (simtime,
// flashstate, panicpolicy, exhaustive, schedstate, shardlock,
// banklock, lanepurity, maporder, claimgraph — see internal/analysis)
// in two modes.
//
// Standalone, for humans:
//
//	go run ./cmd/envyvet ./...
//
// shells out to `go list -deps -export -test -json` for package facts
// and compiler export data, type-checks every module package
// (including test variants) from source in dependency order with one
// shared fact store — so the cross-package analyzers see their
// dependencies' facts — and prints findings as file:line:col: message,
// exiting nonzero if there are any. Stale //envyvet:allow directives
// are findings too.
//
// As a vet tool, for CI and `go vet` caching:
//
//	go build -o envyvet ./cmd/envyvet
//	go vet -vettool=$(pwd)/envyvet ./...
//
// speaks the go vet unitchecker protocol: -V=full for the tool
// fingerprint, then one .cfg JSON file per package naming its sources,
// the export data of its dependencies, and their .vetx fact files.
// Facts serialize through the .vetx files, so cross-package analysis
// works identically under go vet — dependency packages are analyzed
// fact-only (VetxOnly), with their diagnostics suppressed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"envy/internal/analysis"

	"go/ast"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags; go vet asks for a JSON list.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion emits the fingerprint line the go command caches vet
// results under. The format must be "<name> version <version>", and a
// hash of the tool's own binary goes into the version token so
// rebuilding envyvet invalidates stale vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version 1.0.0-%x\n", name, h.Sum(nil)[:16])
}

// ---------------- standalone driver ----------------

func runStandalone(patterns []string) int {
	findings, err := analysis.CheckModule(patterns)
	for _, line := range findings {
		fmt.Fprintln(os.Stderr, line)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
		return 1
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// ---------------- go vet unitchecker protocol ----------------

// vetConfig is the package description the go command writes for a
// vet tool (the fields of x/tools' unitchecker.Config this driver
// consumes). PackageVetx maps each dependency's import path to the
// .vetx fact file its own envyvet invocation wrote; VetxOutput is
// where this invocation must leave its facts.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "envyvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(analysis.ScrubImportPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
		return 1
	}

	// Rebuild the fact store from the dependencies' .vetx files, run
	// the suite (quietly for VetxOnly dependency passes), and leave
	// this package's accumulated facts for its dependents.
	store := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
			return 1
		}
		if err := store.Merge(data); err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: %s: %v\n", vetx, err)
			return 1
		}
	}
	unit := &analysis.Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	findings := analysis.CheckPackage(unit, store)
	if cfg.VetxOutput != "" {
		facts, err := store.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "envyvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, line := range findings {
		fmt.Fprintln(os.Stderr, line)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
