package envy_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"envy"
)

// The Device front-end documents sequential consistency under
// concurrent use: every method call lands in one total order and sees
// all effects of the calls before it. These tests drive that claim
// under the race detector — mixed reads, writes, transactions, stats
// snapshots, and a power failure in the middle of it all.

func concurrencyConfig() envy.Config {
	return envy.Config{
		PageSize:          128,
		PagesPerSegment:   32,
		Segments:          16,
		Banks:             4,
		Policy:            envy.HybridPolicy,
		PartitionSegments: 4,
		WearThreshold:     16,
		BufferPages:       64,
		ParallelFlush:     2,
	}
}

// crashedErr reports whether err is one of the two expected power-
// failure rejections (the crash itself, or an access while down).
func crashedErr(err error) bool {
	return errors.Is(err, envy.ErrPowerFailure) || errors.Is(err, envy.ErrCrashed)
}

// hammer runs workers goroutines of mixed word reads and writes, each
// over its own address stripe, plus one transaction owner and one
// stats observer. Each worker verifies read-after-write on its own
// stripe — no other goroutine touches it, so sequential consistency
// makes the read-back exact. If tolerateCrash is set, workers stand
// down quietly once the device goes down; otherwise any error fails
// the test.
func hammer(t *testing.T, dev *envy.Device, workers, opsPerWorker int, tolerateCrash bool) {
	t.Helper()
	stripe := uint64(4096)
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * stripe
			for i := 0; i < opsPerWorker; i++ {
				// Stride by 132 bytes so successive ops land on
				// different pages: buffer pressure, flushes, and
				// cleaning all happen under the hammer.
				addr := base + uint64(i*132)%stripe
				want := uint32(w)<<24 | uint32(i)
				if _, err := dev.WriteWordErr(addr, want); err != nil {
					if tolerateCrash && crashedErr(err) {
						return
					}
					t.Errorf("worker %d: write %#x: %v", w, addr, err)
					return
				}
				got, _, err := dev.ReadWordErr(addr)
				if err != nil {
					if tolerateCrash && crashedErr(err) {
						return
					}
					t.Errorf("worker %d: read %#x: %v", w, addr, err)
					return
				}
				if got != want {
					t.Errorf("worker %d: read %#x = %#x, want %#x", w, addr, got, want)
					return
				}
			}
		}(w)
	}

	// One goroutine owns the device-wide transaction, alternating
	// commits and rollbacks over its own stripe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := uint64(workers) * stripe
		buf := make([]byte, 8)
		for round := 0; round < opsPerWorker/10+1; round++ {
			if err := dev.Begin(); err != nil {
				if tolerateCrash && crashedErr(err) {
					return
				}
				t.Errorf("txn: begin: %v", err)
				return
			}
			binary.LittleEndian.PutUint64(buf, uint64(round))
			if _, err := dev.WriteErr(buf, base+uint64(round%64)*8); err != nil {
				if tolerateCrash && crashedErr(err) {
					return
				}
				t.Errorf("txn: write: %v", err)
				return
			}
			var err error
			if round%2 == 0 {
				err = dev.Commit()
			} else {
				err = dev.Rollback()
			}
			if err != nil {
				if tolerateCrash && crashedErr(err) {
					return
				}
				t.Errorf("txn: close round %d: %v", round, err)
				return
			}
		}
	}()

	// An observer snapshots stats and occasionally lets the device idle
	// — both must be race-free against the access goroutines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < opsPerWorker/4; i++ {
			s := dev.Stats()
			if s.Writes < 0 {
				t.Error("observer: negative write count")
				return
			}
			if i%16 == 0 {
				dev.Idle(100_000) // 100µs of background progress
			}
		}
	}()

	wg.Wait()
}

func TestConcurrentAccess(t *testing.T) {
	dev, err := envy.New(concurrencyConfig())
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, dev, 8, 300, false)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatalf("post-hammer consistency: %v", err)
	}
	s := dev.Stats()
	if s.Writes == 0 || s.Reads == 0 {
		t.Fatalf("hammer recorded no traffic: %+v", s)
	}
	if s.FlushOps.Completed == 0 {
		t.Fatalf("no flushes completed under load: %+v", s.FlushOps)
	}
}

// TestConcurrentCrashRecover arms a fault so the device dies mid-
// hammer, then mounts it again with Recover while nothing else runs.
// Acknowledged state must come back consistent.
func TestConcurrentCrashRecover(t *testing.T) {
	cfg := concurrencyConfig()
	cfg.FaultPlan = &envy.FaultPlan{Program: 40, Seed: 0x9e3779b97f4a7c15}
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, dev, 8, 300, true)
	if !dev.Crashed() {
		t.Fatal("fault plan never fired during the concurrent hammer")
	}
	report, err := dev.Recover()
	if err != nil {
		t.Fatalf("recover: %v (report: %v)", err, report)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatalf("post-recovery consistency: %v", err)
	}
	// The recovered device must serve traffic again, concurrently.
	hammer(t, dev, 4, 100, false)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatalf("post-recovery hammer consistency: %v", err)
	}
}

// TestConcurrentStatsString keeps fmt happy about the exported stats
// shape — a cheap guard that the per-op counters marshal sensibly.
func TestConcurrentStatsString(t *testing.T) {
	dev, err := envy.New(concurrencyConfig())
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, dev, 2, 50, false)
	s := dev.Stats()
	line := fmt.Sprintf("%+v", s.FlushOps)
	if line == "" {
		t.Fatal("empty op counter rendering")
	}
}
