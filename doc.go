// Package envy is a production-quality reimplementation of eNVy, the
// non-volatile main-memory storage system of Wu & Zwaenepoel (ASPLOS
// 1994).
//
// eNVy presents a large Flash array as a flat, byte-addressable,
// persistent memory with in-place update semantics. Flash itself is
// write-once/bulk-erase, programs ~40× slower than it reads, and wears
// out; eNVy hides all three behind copy-on-write into a battery-backed
// SRAM write buffer, page remapping through an SRAM page table, and a
// locality-aware cleaning (garbage collection) policy with even wear.
//
// # Quick start
//
//	dev, err := envy.New(envy.SmallConfig())
//	if err != nil { ... }
//	dev.Write([]byte("hello, persistent world"), 0)
//	buf := make([]byte, 23)
//	dev.Read(buf, 0)
//
// Every access is simulated on a nanosecond-resolution clock; Read and
// Write report the host-observed latency, and Device.Stats exposes the
// counters and controller time breakdown the paper's evaluation is
// built from. The cmd/experiments tool regenerates every figure and
// table of the paper's evaluation section; see EXPERIMENTS.md.
package envy
