// Golden determinism tests: fixed-seed workloads whose full measurement
// snapshot (clock, latency stream hash, counters, breakdown fractions,
// wear) is pinned in testdata/golden/. The fixtures were captured from
// the pre-scheduler controller at ParallelFlush=1; the scheduler-based
// controller must reproduce them bit-identically — same seed + config
// ⇒ same simulated timeline.
//
// Regenerate (only when a change intentionally alters the timeline):
//
//	go test -run TestGolden -update
package envy_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"envy"
	"envy/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// goldenSnapshot is the pinned measurement state. It deliberately lists
// each field instead of embedding envy.Stats: new Stats fields (for
// example per-operation scheduler counters) must not invalidate
// fixtures captured before they existed.
type goldenSnapshot struct {
	NowNs       int64  `json:"now_ns"`
	LatencyHash uint64 `json:"latency_hash"` // FNV-1a over every host latency, in order

	ReadMeanNs  int64 `json:"read_mean_ns"`
	WriteMeanNs int64 `json:"write_mean_ns"`
	ReadP99Ns   int64 `json:"read_p99_ns"`
	WriteP99Ns  int64 `json:"write_p99_ns"`
	ReadMaxNs   int64 `json:"read_max_ns"`
	WriteMaxNs  int64 `json:"write_max_ns"`

	Reads         int64 `json:"reads"`
	Writes        int64 `json:"writes"`
	CopyOnWrites  int64 `json:"copy_on_writes"`
	BufferHits    int64 `json:"buffer_hits"`
	Flushes       int64 `json:"flushes"`
	CleanCopies   int64 `json:"clean_copies"`
	SegmentCleans int64 `json:"segment_cleans"`
	Erases        int64 `json:"erases"`
	WearSwaps     int64 `json:"wear_swaps"`

	CleaningCost float64 `json:"cleaning_cost"`
	FracIdle     float64 `json:"frac_idle"`
	FracReading  float64 `json:"frac_reading"`
	FracWriting  float64 `json:"frac_writing"`
	FracFlushing float64 `json:"frac_flushing"`
	FracCleaning float64 `json:"frac_cleaning"`
	FracErase    float64 `json:"frac_erase"`

	MMUHitRate    float64 `json:"mmu_hit_rate"`
	WearMin       int64   `json:"wear_min"`
	WearMax       int64   `json:"wear_max"`
	BufferedPages int     `json:"buffered_pages"`
}

func snapshot(dev *envy.Device, latHash uint64) goldenSnapshot {
	s := dev.Stats()
	return goldenSnapshot{
		NowNs:       int64(dev.Now()),
		LatencyHash: latHash,
		ReadMeanNs:  int64(s.ReadMean), WriteMeanNs: int64(s.WriteMean),
		ReadP99Ns: int64(s.ReadP99), WriteP99Ns: int64(s.WriteP99),
		ReadMaxNs: int64(s.ReadMax), WriteMaxNs: int64(s.WriteMax),
		Reads: s.Reads, Writes: s.Writes,
		CopyOnWrites: s.CopyOnWrites, BufferHits: s.BufferHits,
		Flushes: s.Flushes, CleanCopies: s.CleanCopies,
		SegmentCleans: s.SegmentCleans, Erases: s.Erases, WearSwaps: s.WearSwaps,
		CleaningCost: s.CleaningCost,
		FracIdle:     s.FracIdle, FracReading: s.FracReading, FracWriting: s.FracWriting,
		FracFlushing: s.FracFlushing, FracCleaning: s.FracCleaning, FracErase: s.FracErase,
		MMUHitRate: s.MMUHitRate,
		WearMin:    s.WearMin, WearMax: s.WearMax,
		BufferedPages: s.BufferedPages,
	}
}

// fnv1a folds a value into a running FNV-1a hash; the golden tests
// chain every host-observed latency through it, so a one-nanosecond
// divergence anywhere in the timeline changes the final hash.
func fnv1a(h, v uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

// goldenScenario drives one fixed-seed mixed workload through the
// public API: single writes and reads, block reads, idle stretches,
// committed transactions, and periodic clean power cycles.
func goldenScenario(t *testing.T, cfg envy.Config, seed uint64, ops int) goldenSnapshot {
	return goldenScenarioSkewed(t, cfg, seed, ops, 0)
}

// goldenScenarioSkewed is goldenScenario with optional hot/cold skew:
// with hotFrac > 0, 98% of the addresses land in the first hotFrac of
// the logical space, leaving cold segments to fall behind in wear (the
// condition that trips wear-leveling swaps). hotFrac == 0 draws
// nothing extra from the RNG, so uniform fixtures are unaffected.
func goldenScenarioSkewed(t *testing.T, cfg envy.Config, seed uint64, ops int, hotFrac float64) goldenSnapshot {
	t.Helper()
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(seed)
	size := uint64(dev.Size())
	words := size / 4
	var hash uint64
	addr := func() uint64 {
		if hotFrac > 0 && rng.Float64() < 0.98 {
			hot := uint64(float64(words) * hotFrac)
			if hot == 0 {
				hot = 1
			}
			return rng.Uint64n(hot) * 4
		}
		return rng.Uint64n(words) * 4
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 50:
			lat, err := dev.WriteWordErr(addr(), uint32(rng.Uint64()))
			if err != nil {
				t.Fatalf("op %d: write: %v", i, err)
			}
			hash = fnv1a(hash, uint64(lat))
		case r < 75:
			_, lat, err := dev.ReadWordErr(addr())
			if err != nil {
				t.Fatalf("op %d: read: %v", i, err)
			}
			hash = fnv1a(hash, uint64(lat))
		case r < 85:
			var buf [16]byte
			a := addr()
			if a+16 > size {
				a = size - 16
			}
			lat, err := dev.ReadErr(buf[:], a)
			if err != nil {
				t.Fatalf("op %d: block read: %v", i, err)
			}
			hash = fnv1a(hash, uint64(lat))
		case r < 93:
			dev.Idle(time.Duration(1+rng.Intn(20)) * time.Microsecond)
		default:
			if err := dev.Begin(); err != nil {
				t.Fatalf("op %d: begin: %v", i, err)
			}
			for j := 0; j < 3; j++ {
				lat, err := dev.WriteWordErr(addr(), uint32(rng.Uint64()))
				if err != nil {
					t.Fatalf("op %d: txn write: %v", i, err)
				}
				hash = fnv1a(hash, uint64(lat))
			}
			if err := dev.Commit(); err != nil {
				t.Fatalf("op %d: commit: %v", i, err)
			}
		}
		if i%1024 == 1023 {
			dev.PowerCycle()
		}
	}
	dev.Idle(2 * time.Millisecond) // drain in-flight background work
	if err := dev.CheckConsistency(); err != nil {
		t.Fatalf("post-workload consistency: %v", err)
	}
	return snapshot(dev, hash)
}

func goldenCompare(t *testing.T, name string, got goldenSnapshot) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".json")
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if string(want) != string(raw) {
		var w goldenSnapshot
		if err := json.Unmarshal(want, &w); err == nil {
			t.Errorf("timeline diverged from golden fixture %s:\n got %+v\nwant %+v", path, got, w)
		} else {
			t.Errorf("timeline diverged from golden fixture %s:\n got %s\nwant %s", path, raw, want)
		}
	}
}

// goldenConfig is the shared small geometry: 32 segments of 64 pages
// over 8 banks, a 64-frame buffer, aggressive wear leveling so the
// swap path is exercised.
func goldenConfig(policy envy.Policy) envy.Config {
	return envy.Config{
		PageSize:        256,
		PagesPerSegment: 64,
		Segments:        32,
		Banks:           8,
		Policy:          policy,
		// PartitionSegments default (16) applies to HybridPolicy.
		WearThreshold: 8,
		BufferPages:   64,
	}
}

func TestGoldenHybrid(t *testing.T) {
	goldenCompare(t, "hybrid", goldenScenario(t, goldenConfig(envy.HybridPolicy), 0x5eed1, 6000))
}

func TestGoldenGreedy(t *testing.T) {
	goldenCompare(t, "greedy", goldenScenario(t, goldenConfig(envy.GreedyPolicy), 0x5eed2, 6000))
}

// TestGoldenSmallConfig pins the paper-shaped small profile (128
// segments, 8 banks, hybrid-16) under a shorter workload.
func TestGoldenSmallConfig(t *testing.T) {
	cfg := envy.SmallConfig()
	cfg.BufferPages = 256 // small enough that the flush path engages
	goldenCompare(t, "smallconfig", goldenScenario(t, cfg, 0x5eed3, 4000))
}

// TestGoldenWear pins a high-churn tiny array where the wear-leveling
// threshold trips repeatedly, so the WearSwap timeline (two relocations
// plus erases per swap) is part of the golden record.
func TestGoldenWear(t *testing.T) {
	cfg := envy.Config{
		PageSize:        256,
		PagesPerSegment: 32,
		Segments:        8,
		Banks:           4,
		Policy:          envy.HybridPolicy,
		// Pure locality gathering (§4.3) segregates the hot set into its
		// own segments, which is what makes cold segments stop cycling
		// and the wear spread grow.
		PartitionSegments: 1,
		WearThreshold:     2,
		BufferPages:       16,
	}
	// The hot set must overflow the 16-frame buffer (or it never
	// flushes) while leaving most segments cold: 25% of ~200 logical
	// pages ≈ 50 hot pages against a 32-page segment.
	snap := goldenScenarioSkewed(t, cfg, 0x5eed4, 12000, 0.25)
	if snap.WearSwaps == 0 {
		t.Error("wear scenario performed no wear swaps; the WearSwap timeline is not covered")
	}
	goldenCompare(t, "wear", snap)
}

// TestGoldenRepeatable double-checks that two runs of the same scenario
// in one process agree before comparing against the fixture — a guard
// that distinguishes "the refactor changed the timeline" from "the
// workload itself is nondeterministic".
func TestGoldenRepeatable(t *testing.T) {
	a := goldenScenario(t, goldenConfig(envy.HybridPolicy), 0x5eed1, 1500)
	b := goldenScenario(t, goldenConfig(envy.HybridPolicy), 0x5eed1, 1500)
	if a != b {
		t.Fatalf("same seed, same config, different snapshots:\n a %+v\n b %+v", a, b)
	}
}
