package envy

import (
	"bytes"
	"testing"
	"time"

	"envy/internal/invariant"
)

// mapTierConfig is a small device with the two-tier page table on:
// tiny mapping pages and cache so the tier's fetch/writeback/clean
// machinery all engage under modest traffic.
func mapTierConfig() Config {
	return Config{
		PageSize:          64,
		PagesPerSegment:   16,
		Segments:          16,
		Banks:             2,
		Policy:            HybridPolicy,
		PartitionSegments: 4,
		WearThreshold:     100,
		BufferPages:       32,
		MapTier:           &MapTierConfig{CacheFrames: 8, SegmentPages: 16},
	}
}

// TestMapTierReadWriteEquivalence runs the same program against a
// flat-table device and a two-tier device: the data plane must be
// byte-identical (the tier changes translation cost, never contents),
// and the tiered device must stay internally consistent throughout.
func TestMapTierReadWriteEquivalence(t *testing.T) {
	flatCfg := mapTierConfig()
	flatCfg.MapTier = nil
	flat, err := New(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := New(mapTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	var chk invariant.Checker

	buf := make([]byte, 256)
	for round := 0; round < 60; round++ {
		for i := range buf {
			buf[i] = byte(round + i)
		}
		addr := uint64(round%40) * 256
		flat.Write(buf, addr)
		tiered.Write(buf, addr)
		if round%7 == 0 {
			flat.Idle(200 * time.Microsecond)
			tiered.Idle(200 * time.Microsecond)
		}
		if err := chk.Check(tiered.Core()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	got := make([]byte, 256)
	want := make([]byte, 256)
	for round := 0; round < 40; round++ {
		addr := uint64(round) * 256
		flat.Read(want, addr)
		tiered.Read(got, addr)
		if !bytes.Equal(got, want) {
			t.Fatalf("page at %d diverged between flat and tiered devices", addr)
		}
	}

	st := tiered.Stats()
	if !st.MapTierEnabled {
		t.Fatal("Stats.MapTierEnabled false on a tiered device")
	}
	if st.MapHits+st.MapMisses == 0 {
		t.Fatal("tiered device served no translations through the mapping cache")
	}
	if fst := flat.Stats(); fst.MapTierEnabled || fst.MapDirectoryBytes != 0 {
		t.Fatalf("flat device reports tier stats: %+v", fst)
	}
}

// TestMapTierSRAMBudget pins the point of the tier: its battery-backed
// footprint (directory + cache) undercuts the flat table it replaces.
func TestMapTierSRAMBudget(t *testing.T) {
	cfg := mapTierConfig()
	cfg.Segments = 64 // more logical pages to make the flat table big
	dev, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	tier := st.MapDirectoryBytes + st.MapCacheBytes
	if tier == 0 {
		t.Fatal("tiered device reports zero tier SRAM")
	}
	if tier >= st.FlatTableBytes {
		t.Fatalf("tier SRAM %d not below the flat table's %d", tier, st.FlatTableBytes)
	}
}

// TestMapTierBackgroundOps drives enough write traffic that mapping
// pages wash in and out of the cache, then checks the background
// machinery showed up in the op-lifecycle stats.
func TestMapTierBackgroundOps(t *testing.T) {
	dev, err := New(mapTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	// Touch the whole logical space repeatedly: far more mapping pages
	// than the 8 cache frames, so fetches, evictions and writebacks run.
	n := int(dev.Size() / 64)
	for round := 0; round < 6; round++ {
		for p := 0; p < n; p++ {
			for i := range buf {
				buf[i] = byte(p + round)
			}
			dev.Write(buf, uint64(p)*64)
		}
		dev.Idle(2 * time.Millisecond)
	}
	st := dev.Stats()
	if st.MapFetches == 0 {
		t.Fatalf("no mapping-page fetches after sweeping %d pages with 8 frames: %+v", n, st)
	}
	if st.MapWritebacks+st.MapSyncWritebacks == 0 {
		t.Fatal("no mapping-page writebacks after sustained write traffic")
	}
	if st.MapFlushOps.Started != st.MapWritebacks {
		t.Fatalf("MapFlushOps.Started = %d, want %d (one op per background writeback)",
			st.MapFlushOps.Started, st.MapWritebacks)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestMapTierCrashRecovery yanks power mid-traffic on a tiered device
// and checks the mount path: acknowledged data reads back, the tier's
// own repairs are reported, and the full invariant suite holds.
func TestMapTierCrashRecovery(t *testing.T) {
	dev, err := New(mapTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64]uint32)
	word := func(round, p int) uint32 { return uint32(round)<<16 | uint32(p) }

	n := int(dev.Size() / 4)
	for round := 0; round < 8; round++ {
		dev.ArmFault(FaultPlan{Program: int64(20 + round*13), Seed: uint64(round)})
		for p := 0; p < n; p++ {
			addr := uint64(p) * 4
			if _, err := dev.WriteWordErr(addr, word(round, p)); err != nil {
				if err == ErrPowerFailure || dev.Crashed() {
					break
				}
				t.Fatalf("round %d: write: %v", round, err)
			}
			model[addr] = word(round, p)
		}
		if !dev.Crashed() {
			dev.CrashPowerCycle()
		}
		rep, err := dev.Recover()
		if err != nil {
			t.Fatalf("round %d: recovery: %v (report %+v)", round, err, rep)
		}
		for addr, want := range model {
			got, _, err := dev.ReadWordErr(addr)
			if err != nil {
				t.Fatalf("round %d: read at %d: %v", round, addr, err)
			}
			if got != want {
				t.Fatalf("round %d: read %#x at %d, want %#x", round, got, addr, want)
			}
		}
		if err := dev.CheckConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestMapTierRejectsParallelService pins the documented incompatibility.
func TestMapTierRejectsParallelService(t *testing.T) {
	cfg := mapTierConfig()
	cfg.ParallelService = true
	cfg.PageTableShards = 2
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted MapTier together with ParallelService")
	}
}
