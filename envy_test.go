package envy_test

import (
	"bytes"
	"testing"
	"time"

	"envy"
)

func newSmall(t *testing.T) *envy.Device {
	t.Helper()
	dev, err := envy.New(envy.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestPaperConfigShape(t *testing.T) {
	cfg := envy.PaperConfig()
	if cfg.Segments != 128 || cfg.PageSize != 256 || cfg.Banks != 8 {
		t.Errorf("paper config = %+v", cfg)
	}
	if int64(cfg.PageSize)*int64(cfg.PagesPerSegment)*int64(cfg.Segments) != 2<<30 {
		t.Error("paper config is not 2 GB")
	}
}

func TestSmallDeviceBasics(t *testing.T) {
	dev := newSmall(t)
	if dev.Size() <= 0 {
		t.Fatal("no capacity")
	}
	lat := dev.WriteWord(0, 42)
	if lat <= 0 {
		t.Error("write latency not positive")
	}
	v, lat := dev.ReadWord(0)
	if v != 42 || lat <= 0 {
		t.Errorf("read = %d, %v", v, lat)
	}
	if dev.Now() <= 0 {
		t.Error("clock did not advance")
	}
}

func TestBulkRoundTripAndPersistence(t *testing.T) {
	dev := newSmall(t)
	data := bytes.Repeat([]byte("envy"), 1000)
	dev.Write(data, 12345*4)
	dev.Idle(time.Second)
	dev.PowerCycle()
	got := make([]byte, len(data))
	dev.Read(got, 12345*4)
	if !bytes.Equal(got, data) {
		t.Error("data lost")
	}
}

func TestPreloadPublic(t *testing.T) {
	dev := newSmall(t)
	if err := dev.Preload([]byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	v, _ := dev.ReadWord(0)
	if v != 0x04030201 {
		t.Errorf("preloaded word = %#x", v)
	}
}

func TestTransactionsPublic(t *testing.T) {
	dev := newSmall(t)
	dev.WriteWord(0, 1)
	dev.Idle(500 * time.Millisecond)
	if err := dev.Begin(); err != nil {
		t.Fatal(err)
	}
	dev.WriteWord(0, 2)
	if err := dev.Rollback(); err != nil {
		t.Fatal(err)
	}
	if v, _ := dev.ReadWord(0); v != 1 {
		t.Errorf("after rollback: %d", v)
	}
	if err := dev.Begin(); err != nil {
		t.Fatal(err)
	}
	dev.WriteWord(0, 3)
	if err := dev.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := dev.ReadWord(0); v != 3 {
		t.Errorf("after commit: %d", v)
	}
}

func TestStatsSnapshot(t *testing.T) {
	dev := newSmall(t)
	for i := 0; i < 5000; i++ {
		dev.WriteWord(uint64(i%4000)*256, uint32(i))
	}
	dev.Idle(2 * time.Second)
	s := dev.Stats()
	if s.Writes != 5000 {
		t.Errorf("writes = %d", s.Writes)
	}
	if s.CopyOnWrites == 0 || s.Flushes == 0 {
		t.Errorf("stats look empty: %+v", s)
	}
	if s.FracIdle <= 0 {
		t.Error("no idle fraction recorded")
	}
	dev.ResetStats()
	if got := dev.Stats(); got.Writes != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestPolicyStrings(t *testing.T) {
	if envy.HybridPolicy.String() != "hybrid" || envy.GreedyPolicy.String() != "greedy" {
		t.Error("policy strings wrong")
	}
}

func TestGreedyPolicyDevice(t *testing.T) {
	cfg := envy.SmallConfig()
	cfg.Policy = envy.GreedyPolicy
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		dev.WriteWord(uint64(i%8000)*256, uint32(i))
		if i%64 == 0 {
			dev.Idle(time.Millisecond)
		}
	}
	dev.Idle(2 * time.Second)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := envy.New(envy.Config{}); err == nil {
		t.Error("zero config accepted")
	}
}
