package envy_test

import (
	"testing"
	"time"

	"envy"
	"envy/internal/invariant"
	"envy/internal/sim"
)

// diffConfig is the shared small geometry for differential-policy
// tests: the golden geometry with the diff write-back enabled.
func diffConfig() envy.Config {
	cfg := goldenConfig(envy.HybridPolicy)
	cfg.FlushPolicy = envy.DiffFlush
	return cfg
}

// TestProgramBytesFullPage pins the write-amplification numerator's
// baseline: under the default full-page policy every Flash program —
// flush, cleaning copy, wear-swap relocation — moves exactly one
// PageSize payload, so ProgramBytes must equal programs × PageSize.
func TestProgramBytesFullPage(t *testing.T) {
	cfg := goldenConfig(envy.HybridPolicy)
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(0xb17e5)
	size := uint64(dev.Size())
	for i := 0; i < 4000; i++ {
		addr := rng.Uint64n(size/4) * 4
		dev.WriteWord(addr, uint32(i))
		if i%256 == 0 {
			dev.Idle(2 * time.Millisecond)
		}
	}
	dev.Idle(time.Second)
	s := dev.Stats()
	programs := dev.Core().Array().Programs()
	if programs == 0 {
		t.Fatal("workload performed no Flash programs; nothing pinned")
	}
	if want := programs * int64(cfg.PageSize); s.ProgramBytes != want {
		t.Errorf("ProgramBytes = %d under full-page policy, want programs × PageSize = %d × %d = %d",
			s.ProgramBytes, programs, cfg.PageSize, want)
	}
	if s.DiffRecordsWritten != 0 || s.DiffUnitPrograms != 0 || s.DiffMerges != 0 || s.DiffPromotions != 0 {
		t.Errorf("full-page policy reported diff activity: %+v", s)
	}
}

// TestDiffReadBack drives small scattered writes through the
// differential policy and verifies every word reads back through the
// base∪chain merge, with diff records actually written and the
// program volume strictly below the full-page equivalent.
func TestDiffReadBack(t *testing.T) {
	dev, err := envy.New(diffConfig())
	if err != nil {
		t.Fatal(err)
	}
	var chk invariant.Checker
	rng := sim.NewRNG(0xd1ff1)
	size := uint64(dev.Size())
	model := make(map[uint64]uint32)
	for i := 0; i < 6000; i++ {
		// Cluster addresses so pages are rewritten with small deltas —
		// the chain-building pattern the policy exists for.
		addr := rng.Uint64n(size/64) * 4
		v := uint32(i)<<8 | uint32(addr&0xff)
		dev.WriteWord(addr, v)
		model[addr] = v
		if i%512 == 0 {
			dev.Idle(2 * time.Millisecond)
			if err := chk.Check(dev.Core()); err != nil {
				t.Fatalf("after %d writes: %v", i, err)
			}
		}
	}
	dev.Idle(time.Second)
	if err := chk.Check(dev.Core()); err != nil {
		t.Fatal(err)
	}
	for addr, want := range model {
		if v, _ := dev.ReadWord(addr); v != want {
			t.Fatalf("read %#x at %d, want %#x", v, addr, want)
		}
	}
	s := dev.Stats()
	if s.DiffRecordsWritten == 0 {
		t.Error("differential policy wrote no diff records")
	}
	if s.DiffMerges == 0 {
		t.Error("no base∪chain merges happened; chains were never read or consolidated")
	}
	programs := dev.Core().Array().Programs()
	if full := programs * int64(dev.Core().Geometry().PageSize); s.ProgramBytes >= full {
		t.Errorf("ProgramBytes = %d not below full-page equivalent %d", s.ProgramBytes, full)
	}
}

// TestDiffPromotion pins the chain-length bound: rewriting one page
// more times than DiffMaxChain allows must promote it to a full-page
// flush that supersedes base and chain.
func TestDiffPromotion(t *testing.T) {
	cfg := diffConfig()
	cfg.DiffMaxChain = 2
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var chk invariant.Checker
	for round := 0; round < 12; round++ {
		// Fill the buffer past the flush high-water mark so every
		// round's small write actually drains, then touch the victim.
		for p := uint64(0); p < 56; p++ {
			dev.WriteWord(4096+p*256, uint32(round)<<16|uint32(p))
		}
		dev.WriteWord(0, uint32(round))
		dev.Idle(50 * time.Millisecond)
		if err := chk.Check(dev.Core()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	s := dev.Stats()
	if s.DiffRecordsWritten == 0 {
		t.Fatal("victim page never took the diff path")
	}
	if s.DiffPromotions == 0 {
		t.Errorf("chain never promoted to a full-page flush (records %d, merges %d)",
			s.DiffRecordsWritten, s.DiffMerges)
	}
	if v, _ := dev.ReadWord(0); v != 11 {
		t.Errorf("victim reads %d after promotion rounds, want 11", v)
	}
}

// TestDiffTransactions runs committed and rolled-back transactions
// over chained pages: shadows, the copy-on-write keep window, and the
// rollback path must preserve exactly the committed image.
func TestDiffTransactions(t *testing.T) {
	dev, err := envy.New(diffConfig())
	if err != nil {
		t.Fatal(err)
	}
	var chk invariant.Checker
	rng := sim.NewRNG(0xd1ff7)
	size := uint64(dev.Size())
	model := make(map[uint64]uint32)
	for round := 0; round < 40; round++ {
		// Plain writes build chains between transactions.
		for i := 0; i < 120; i++ {
			addr := rng.Uint64n(size/64) * 4
			v := uint32(round)<<16 | uint32(i)
			dev.WriteWord(addr, v)
			model[addr] = v
		}
		dev.Idle(5 * time.Millisecond)
		if err := dev.Begin(); err != nil {
			t.Fatal(err)
		}
		pend := make(map[uint64]uint32)
		for i := 0; i < 30; i++ {
			addr := rng.Uint64n(size/64) * 4
			v := uint32(round)<<16 | 0x8000 | uint32(i)
			dev.WriteWord(addr, v)
			pend[addr] = v
		}
		if round%2 == 0 {
			if err := dev.Commit(); err != nil {
				t.Fatal(err)
			}
			for a, v := range pend {
				model[a] = v
			}
		} else if err := dev.Rollback(); err != nil {
			t.Fatal(err)
		}
		if err := chk.Check(dev.Core()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	dev.Idle(time.Second)
	for addr, want := range model {
		if v, _ := dev.ReadWord(addr); v != want {
			t.Fatalf("read %#x at %d, want %#x", v, addr, want)
		}
	}
	if err := chk.Check(dev.Core()); err != nil {
		t.Fatal(err)
	}
}

// TestDiffCleaningConsolidates forces enough churn that the cleaner
// must copy chained pages, and verifies consolidation: after heavy
// cleaning the surviving image is intact and chains were merged (not
// copied record-by-record — the cleaner has no way to copy a unit
// whose members belong to different segments' live data).
func TestDiffCleaningConsolidates(t *testing.T) {
	cfg := diffConfig()
	cfg.Segments = 8
	cfg.PagesPerSegment = 32
	cfg.BufferPages = 24
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var chk invariant.Checker
	rng := sim.NewRNG(0xc1ea2)
	size := uint64(dev.Size())
	model := make(map[uint64]uint32)
	for i := 0; i < 20000; i++ {
		addr := rng.Uint64n(size/4) * 4
		v := uint32(i)
		dev.WriteWord(addr, v)
		model[addr] = v
		if i%997 == 0 {
			dev.Idle(time.Millisecond)
			if err := chk.Check(dev.Core()); err != nil {
				t.Fatalf("after %d writes: %v", i, err)
			}
		}
	}
	dev.Idle(time.Second)
	s := dev.Stats()
	if s.SegmentCleans == 0 {
		t.Fatal("workload never triggered cleaning; consolidation not covered")
	}
	if s.DiffMerges == 0 {
		t.Error("cleaning over chained pages performed no merges")
	}
	for addr, want := range model {
		if v, _ := dev.ReadWord(addr); v != want {
			t.Fatalf("read %#x at %d, want %#x", v, addr, want)
		}
	}
	if err := chk.Check(dev.Core()); err != nil {
		t.Fatal(err)
	}
}

// TestDiffConfigRejected pins the configuration guards: the
// differential policy cannot combine with the parallel service path,
// and a negative chain bound is an error.
func TestDiffConfigRejected(t *testing.T) {
	cfg := diffConfig()
	cfg.ParallelService = true
	cfg.HostQueueDepth = 4
	if _, err := envy.New(cfg); err == nil {
		t.Error("DiffFlush + ParallelService accepted; want error")
	}
	cfg = diffConfig()
	cfg.DiffMaxChain = -1
	if _, err := envy.New(cfg); err == nil {
		t.Error("negative DiffMaxChain accepted; want error")
	}
}
