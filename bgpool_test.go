// Background worker-pool determinism and coverage tests
// (Config.BGWorkers): the pool moves payload bytes on real OS threads,
// so these tests pin that the simulated timeline AND the stored bytes
// are bit-identical to the serial path at every worker count, that the
// map-tier and diff-policy background operations suspend and resume
// correctly over the pool, and that a crash armed while the pool is
// active recovers cleanly.
package envy_test

import (
	"errors"
	"testing"
	"time"

	"envy"
	"envy/internal/invariant"
	"envy/internal/sim"
	"envy/internal/stats"
)

// TestGoldenBGWorkers replays the pinned hybrid golden scenario with
// the worker pool on: every worker count must reproduce the serial
// fixture bit-identically (the fixtures were captured at BGWorkers=0).
func TestGoldenBGWorkers(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		cfg := goldenConfig(envy.HybridPolicy)
		cfg.BGWorkers = workers
		goldenCompare(t, "hybrid", goldenScenario(t, cfg, 0x5eed1, 6000))
	}
}

// fnv1aBytes folds a byte slice into a running FNV-1a hash.
func fnv1aBytes(h uint64, p []byte) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// bgpoolRun drives a flush-heavy seeded workload at the given worker
// count and returns the measurement snapshot, a hash of the entire
// logical contents, and the final stats. ParallelFlush is raised to the
// bank count so multi-lane background windows actually form.
func bgpoolRun(t *testing.T, workers int) (goldenSnapshot, uint64, envy.Stats) {
	t.Helper()
	cfg := goldenConfig(envy.HybridPolicy)
	cfg.ParallelFlush = 8
	cfg.BGWorkers = workers
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	rng := sim.NewRNG(0xb60b)
	words := uint64(dev.Size()) / 4
	var latHash uint64
	for i := 0; i < 8000; i++ {
		switch r := rng.Intn(10); {
		case r < 6:
			lat, err := dev.WriteWordErr(rng.Uint64n(words)*4, uint32(rng.Uint64()))
			if err != nil {
				t.Fatalf("op %d: write: %v", i, err)
			}
			latHash = fnv1a(latHash, uint64(lat))
		case r < 8:
			_, lat, err := dev.ReadWordErr(rng.Uint64n(words) * 4)
			if err != nil {
				t.Fatalf("op %d: read: %v", i, err)
			}
			latHash = fnv1a(latHash, uint64(lat))
		default:
			dev.Idle(time.Duration(1+rng.Intn(10)) * time.Microsecond)
		}
	}
	dev.Idle(2 * time.Millisecond)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	var content uint64
	buf := make([]byte, 4096)
	for addr := int64(0); addr < dev.Size(); addr += int64(len(buf)) {
		chunk := buf
		if rem := dev.Size() - addr; rem < int64(len(chunk)) {
			chunk = chunk[:rem]
		}
		if _, err := dev.ReadErr(chunk, uint64(addr)); err != nil {
			t.Fatalf("readback at %d: %v", addr, err)
		}
		content = fnv1aBytes(content, chunk)
	}
	return snapshot(dev, latHash), content, dev.Stats()
}

// TestBGPoolBitIdentical pins the tentpole determinism claim: timeline
// snapshot and full device contents are identical across the serial
// path and every pooled worker count — and the pool really did move the
// bytes (BGPoolJobs > 0), so the identity is not vacuous.
func TestBGPoolBitIdentical(t *testing.T) {
	serialSnap, serialContent, serialStats := bgpoolRun(t, 0)
	if serialStats.BGPoolWorkers != 0 || serialStats.BGPoolJobs != 0 {
		t.Fatalf("serial run reports pool activity: %d workers, %d jobs", serialStats.BGPoolWorkers, serialStats.BGPoolJobs)
	}
	for _, workers := range []int{1, 3, 8} {
		snap, content, st := bgpoolRun(t, workers)
		if snap != serialSnap {
			t.Errorf("workers=%d: timeline diverged from serial path:\n got %+v\nwant %+v", workers, snap, serialSnap)
		}
		if content != serialContent {
			t.Errorf("workers=%d: device contents diverged from serial path (%#x vs %#x)", workers, content, serialContent)
		}
		if st.BGPoolJobs == 0 {
			t.Errorf("workers=%d: pool ran zero payload jobs; the parallel path was never exercised", workers)
		}
		if st.BGPoolBytes == 0 {
			t.Errorf("workers=%d: pool moved zero bytes", workers)
		}
		if want := min(workers, 8); st.BGPoolWorkers != want {
			t.Errorf("workers=%d: stats report %d workers, want %d", workers, st.BGPoolWorkers, want)
		}
	}
}

// bgpoolOpsConfig is a small geometry that keeps both the map tier and
// the diff policy busy enough for their background operations to be
// preempted by host traffic (suspend/resume coverage).
func bgpoolOpsConfig() envy.Config {
	return envy.Config{
		PageSize:        256,
		PagesPerSegment: 64,
		Segments:        32,
		Banks:           8,
		Policy:          envy.HybridPolicy,
		WearThreshold:   8,
		BufferPages:     64,
		ParallelFlush:   4,
		BGWorkers:       4,
	}
}

// driveOps runs a uniform seeded write/read/idle mix on dev.
func driveOps(t *testing.T, dev *envy.Device, seed uint64, ops int) {
	t.Helper()
	rng := sim.NewRNG(seed)
	words := uint64(dev.Size()) / 4
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 6:
			if _, err := dev.WriteWordErr(rng.Uint64n(words)*4, uint32(rng.Uint64())); err != nil {
				t.Fatalf("op %d: write: %v", i, err)
			}
		case r < 8:
			if _, _, err := dev.ReadWordErr(rng.Uint64n(words) * 4); err != nil {
				t.Fatalf("op %d: read: %v", i, err)
			}
		default:
			dev.Idle(time.Duration(1+rng.Intn(10)) * time.Microsecond)
		}
	}
}

// TestBGPoolMapTierOps pins preempt/suspend/resume of the map-tier
// background operations (mapping-page writebacks and translation-
// segment cleaning) while the worker pool carries the data path's
// payload jobs, and that the run matches its serial twin bit-for-bit.
func TestBGPoolMapTierOps(t *testing.T) {
	run := func(workers int) envy.Stats {
		cfg := bgpoolOpsConfig()
		cfg.BGWorkers = workers
		cfg.MapTier = &envy.MapTierConfig{CacheFrames: 8}
		dev, err := envy.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		driveOps(t, dev, 0x3a97, 12000)
		dev.Idle(2 * time.Millisecond)
		if err := invariant.CheckDevice(dev.Core()); err != nil {
			t.Fatal(err)
		}
		return dev.Stats()
	}
	pooled := run(4)
	if pooled.MapFlushOps.Completed == 0 {
		t.Fatal("no mapping-page writebacks ran; the map tier was idle")
	}
	if pooled.MapFlushOps.Suspensions == 0 || pooled.MapFlushOps.Resumes == 0 {
		t.Errorf("map-tier flush ops were never preempted and resumed (suspensions %d, resumes %d)",
			pooled.MapFlushOps.Suspensions, pooled.MapFlushOps.Resumes)
	}
	if pooled.BGPoolJobs == 0 {
		t.Error("worker pool ran zero jobs under the map tier")
	}
	serial := run(0)
	if pooled.MapFlushOps != serial.MapFlushOps || pooled.MapCleanOps != serial.MapCleanOps ||
		pooled.MapEraseOps != serial.MapEraseOps || pooled.FlushOps != serial.FlushOps {
		t.Errorf("map-tier op lifecycles diverged between pooled and serial runs:\npooled %+v\nserial %+v",
			pooled.MapFlushOps, serial.MapFlushOps)
	}
}

// TestBGPoolDiffOps pins the same for the differential flush policy:
// shared diff-unit programs ride the scheduler over the pool, suspend
// and resume under host traffic, and match the serial twin.
func TestBGPoolDiffOps(t *testing.T) {
	run := func(workers int) (envy.Stats, stats.OpCounters) {
		cfg := bgpoolOpsConfig()
		cfg.BGWorkers = workers
		cfg.FlushPolicy = envy.DiffFlush
		dev, err := envy.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		driveOps(t, dev, 0xd1ff, 12000)
		dev.Idle(2 * time.Millisecond)
		if err := invariant.CheckDevice(dev.Core()); err != nil {
			t.Fatal(err)
		}
		ops := dev.Core().OpStats()
		return dev.Stats(), ops.Get(stats.OpDiffFlush)
	}
	pooled, diffOps := run(4)
	if pooled.DiffUnitPrograms == 0 {
		t.Fatal("no diff units programmed; the diff policy was idle")
	}
	if diffOps.Completed == 0 {
		t.Fatal("no diff-flush operations completed on the scheduler")
	}
	if diffOps.Suspensions == 0 || diffOps.Resumes == 0 {
		t.Errorf("diff-flush ops were never preempted and resumed (suspensions %d, resumes %d)",
			diffOps.Suspensions, diffOps.Resumes)
	}
	serial, serialDiffOps := run(0)
	if diffOps != serialDiffOps || pooled.DiffUnitPrograms != serial.DiffUnitPrograms ||
		pooled.DiffRecordsWritten != serial.DiffRecordsWritten {
		t.Errorf("diff op lifecycles diverged between pooled and serial runs:\npooled %+v\nserial %+v",
			diffOps, serialDiffOps)
	}
}

// TestBGPoolCrashMidResume arms a crash while pooled background
// operations are suspended mid-flight behind host traffic, lets it fire
// as they resume, and requires full recovery: no acknowledged write
// lost, invariants intact.
func TestBGPoolCrashMidResume(t *testing.T) {
	cfg := bgpoolOpsConfig()
	dev, err := envy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	rng := sim.NewRNG(0xc4a5)
	words := uint64(dev.Size()) / 4
	model := make(map[uint64]uint32)
	// Build up suspended background work, then arm a program-count plan
	// so the crash lands inside the resumed operations' window.
	armed := false
	crashed := false
	for i := 0; i < 30000 && !crashed; i++ {
		addr := rng.Uint64n(words/2) * 4
		v := uint32(rng.Uint64())
		_, err := dev.WriteWordErr(addr, v)
		if err != nil {
			if !errors.Is(err, envy.ErrPowerFailure) {
				t.Fatalf("write: %v", err)
			}
			crashed = true
			break
		}
		model[addr] = v
		if !armed && dev.Stats().FlushOps.Suspensions > 0 {
			dev.ArmFault(envy.FaultPlan{Program: 3, Seed: 0xc4a5})
			armed = true
		}
		if i%64 == 63 {
			dev.Idle(time.Duration(1+rng.Intn(50)) * time.Microsecond)
		}
		if dev.Crashed() {
			crashed = true
		}
	}
	if !armed {
		t.Fatal("background operations were never suspended; the mid-resume window was not reached")
	}
	if !crashed {
		t.Fatal("armed crash never fired")
	}
	if _, err := dev.Recover(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	for addr, want := range model {
		v, _, err := dev.ReadWordErr(addr)
		if err != nil {
			t.Fatalf("post-recovery read at %d: %v", addr, err)
		}
		if v != want {
			t.Fatalf("acknowledged write lost at %d: read %#x, want %#x", addr, v, want)
		}
	}
	if err := invariant.CheckDevice(dev.Core()); err != nil {
		t.Fatal(err)
	}
}
